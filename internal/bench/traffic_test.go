package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"rdfframes/internal/obs"
)

// TestMeasureTrafficSmall runs the full traffic benchmark at test scale and
// checks the robustness contract end to end: stages produce traffic, no
// unexpected errors or identity violations, every shed carries Retry-After,
// and the stampede costs exactly one evaluation.
func TestMeasureTrafficSmall(t *testing.T) {
	env, err := NewEnv(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	// Arm a slow log at threshold 0 so every completed query writes a line:
	// the run should produce valid JSON-lines output with no drops.
	var slowBuf bytes.Buffer
	slow := obs.NewSlowLog(&slowBuf, 0)

	rep, err := MeasureTraffic(env, 150*time.Millisecond, []int{2, 8}, 8, 30*time.Second, slow)
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.Stages) != 3 { // two closed-loop steps + the open-loop stage
		t.Fatalf("stages = %d, want 3", len(rep.Stages))
	}
	for i, st := range rep.Stages {
		if st.Requests == 0 {
			t.Errorf("stage %d: no requests", i)
		}
		if st.OK == 0 {
			t.Errorf("stage %d: no successful requests", i)
		}
		if st.P50 <= 0 || st.P50 > st.P95 || st.P95 > st.P99 {
			t.Errorf("stage %d: percentiles broken: p50=%v p95=%v p99=%v", i, st.P50, st.P95, st.P99)
		}
	}
	if rep.Stages[len(rep.Stages)-1].Mode != "open" {
		t.Fatalf("last stage mode = %s, want open", rep.Stages[len(rep.Stages)-1].Mode)
	}

	if rep.UnexpectedErrors != 0 {
		t.Fatalf("unexpected errors = %d", rep.UnexpectedErrors)
	}
	if rep.IdentityViolations != 0 {
		t.Fatalf("identity violations = %d", rep.IdentityViolations)
	}
	if !rep.RetryAfterAlways {
		t.Fatal("some shed lacked Retry-After")
	}

	if rep.Stampede.Clients != 8 {
		t.Fatalf("stampede clients = %d", rep.Stampede.Clients)
	}
	if rep.Stampede.Evaluations != 1 {
		t.Fatalf("stampede evaluations = %d, want exactly 1", rep.Stampede.Evaluations)
	}
	if !rep.Stampede.ByteIdentical {
		t.Fatal("stampede bodies diverged")
	}

	// The cost gate must have a deterministic victim when estimates split.
	if rep.CostShedTask != "" && rep.MaxQueryCost <= 0 {
		t.Fatal("cost-shed task named but no budget set")
	}

	if out := FormatTraffic(rep); out == "" {
		t.Fatal("empty traffic rendering")
	}

	// Metrics snapshot: the run's totals must be present and agree with the
	// load generator's own accounting where the two observe the same event.
	if len(rep.Metrics) == 0 {
		t.Fatal("traffic report has no metrics snapshot")
	}
	var ok200 uint64
	for _, st := range rep.Stages {
		ok200 += st.OK
	}
	// The reference fetches (one per query) and stampede run on the same
	// endpoint family but the references happen before the stages; the 200
	// counter includes them, so it must be >= the stages' total.
	if got := rep.Metrics[`rdfframes_http_requests_total{code="200"}`]; got < float64(ok200) {
		t.Fatalf("metrics 200s = %v, stages saw %d", got, ok200)
	}

	// Slow log armed at threshold 0: every line must be valid JSON with the
	// fields the schema promises, and nothing may have been dropped.
	if slow.Dropped() != 0 {
		t.Fatalf("slow log dropped %d entries", slow.Dropped())
	}
	if slow.Entries() == 0 {
		t.Fatal("slow log recorded nothing despite a zero threshold")
	}
	dec := json.NewDecoder(&slowBuf)
	var lines uint64
	for dec.More() {
		var e obs.SlowEntry
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("slow log line %d: %v", lines+1, err)
		}
		if e.RequestID == "" || e.Time == "" {
			t.Fatalf("slow log line %d missing identity: %+v", lines+1, e)
		}
		lines++
	}
	if lines != slow.Entries() {
		t.Fatalf("slow log wrote %d lines but counted %d", lines, slow.Entries())
	}
}
