package bench

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"rdfframes/internal/sparql"
)

// PlannerQuery is one Figure-5 query measured under the greedy
// probe-memoized heuristic versus the cost-based planner, directly on the
// engine (no HTTP), at Parallelism 1 so the comparison isolates join
// ordering from the morsel pool.
type PlannerQuery struct {
	Task string `json:"task"`
	Rows int    `json:"rows"`
	// HeuristicSeconds is the evaluation time with DisableOptimizer (the
	// pre-planner greedy ordering); OptimizedSeconds with the cost-based
	// planner.
	HeuristicSeconds float64 `json:"heuristic_seconds"`
	OptimizedSeconds float64 `json:"optimized_seconds"`
	// Speedup is HeuristicSeconds / OptimizedSeconds.
	Speedup float64 `json:"speedup"`
	// ByteIdentical records that the optimized evaluation's SPARQL JSON was
	// byte-identical to the heuristic one — the planner's correctness
	// contract.
	ByteIdentical bool `json:"byte_identical"`
}

// PlannerReport captures the query-planner benchmark: the Figure-5 suite
// under heuristic versus cost-based join ordering.
type PlannerReport struct {
	// StatsEpoch is the statistics-catalog epoch the optimized runs planned
	// against.
	StatsEpoch uint64 `json:"stats_epoch"`
	BestOf     int    `json:"best_of"`
	// HeuristicSuiteSeconds/OptimizedSuiteSeconds sum the per-query times;
	// Speedup is their ratio.
	HeuristicSuiteSeconds float64 `json:"heuristic_suite_seconds"`
	OptimizedSuiteSeconds float64 `json:"optimized_suite_seconds"`
	Speedup               float64 `json:"speedup"`

	Queries []PlannerQuery `json:"queries"`
}

// MeasurePlanner evaluates every Figure-5 query with the greedy heuristic
// (DisableOptimizer) and with the cost-based planner, timing each with a
// best-of-bestOf and checking the two result serializations byte for byte.
func MeasurePlanner(env *Env, bestOf int, timeout time.Duration) (*PlannerReport, error) {
	if bestOf < 1 {
		bestOf = 1
	}
	heurEng := sparql.NewEngine(env.Store)
	heurEng.SetTimeout(timeout)
	heurEng.Parallelism = 1
	heurEng.DisableOptimizer = true
	optEng := sparql.NewEngine(env.Store)
	optEng.SetTimeout(timeout)
	optEng.Parallelism = 1

	rep := &PlannerReport{StatsEpoch: env.Store.StatsEpoch(), BestOf: bestOf}
	for _, task := range Synthetic() {
		query, err := task.Frame(env).ToSPARQL()
		if err != nil {
			return nil, fmt.Errorf("bench planner %s: %w", task.ID, err)
		}
		want, err := evalJSON(heurEng, query)
		if err != nil {
			return nil, fmt.Errorf("bench planner %s: heuristic: %w", task.ID, err)
		}
		got, err := evalJSON(optEng, query)
		if err != nil {
			return nil, fmt.Errorf("bench planner %s: optimized: %w", task.ID, err)
		}
		res, err := sparql.ReadJSON(bytes.NewReader(want))
		if err != nil {
			return nil, fmt.Errorf("bench planner %s: decode: %w", task.ID, err)
		}
		pq := PlannerQuery{Task: task.ID, Rows: len(res.Rows), ByteIdentical: bytes.Equal(want, got)}

		pq.HeuristicSeconds, err = timeBestSeconds(bestOf, func() error {
			_, err := heurEng.Query(query)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench planner %s: heuristic timing: %w", task.ID, err)
		}
		pq.OptimizedSeconds, err = timeBestSeconds(bestOf, func() error {
			_, err := optEng.Query(query)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench planner %s: optimized timing: %w", task.ID, err)
		}
		if pq.OptimizedSeconds > 0 {
			pq.Speedup = pq.HeuristicSeconds / pq.OptimizedSeconds
		}
		rep.HeuristicSuiteSeconds += pq.HeuristicSeconds
		rep.OptimizedSuiteSeconds += pq.OptimizedSeconds
		rep.Queries = append(rep.Queries, pq)
	}
	if rep.OptimizedSuiteSeconds > 0 {
		rep.Speedup = rep.HeuristicSuiteSeconds / rep.OptimizedSuiteSeconds
	}
	return rep, nil
}

// FormatPlanner renders the planner numbers as a text table.
func FormatPlanner(rep *PlannerReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Query planner: Figure-5 suite, greedy heuristic vs cost-based planner (stats epoch %d)\n", rep.StatsEpoch)
	fmt.Fprintf(&sb, "%-6s %8s %14s %14s %10s %6s\n", "query", "rows", "heuristic (s)", "optimized (s)", "speedup", "same")
	for _, q := range rep.Queries {
		same := "yes"
		if !q.ByteIdentical {
			same = "NO"
		}
		fmt.Fprintf(&sb, "%-6s %8d %14.6f %14.6f %9.2fx %6s\n",
			q.Task, q.Rows, q.HeuristicSeconds, q.OptimizedSeconds, q.Speedup, same)
	}
	fmt.Fprintf(&sb, "suite: %.4fs heuristic -> %.4fs optimized (%.2fx, best of %d)\n",
		rep.HeuristicSuiteSeconds, rep.OptimizedSuiteSeconds, rep.Speedup, rep.BestOf)
	return sb.String()
}
