package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"time"

	"rdfframes/internal/sparql"
)

// ParallelQuery is one Figure-5 query measured under serial vs parallel
// evaluation, directly on the engine (no HTTP), since the evaluator is
// what the morsel pool accelerates.
type ParallelQuery struct {
	Task string `json:"task"`
	Rows int    `json:"rows"`
	// SerialSeconds is the evaluation time at Parallelism 1 (the exact old
	// single-goroutine path); ParallelSeconds at the report's worker count.
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	// Speedup is SerialSeconds / ParallelSeconds.
	Speedup float64 `json:"speedup"`
	// ByteIdentical records that the parallel evaluation's SPARQL JSON was
	// byte-identical to the serial one — the determinism contract.
	ByteIdentical bool `json:"byte_identical"`
}

// ParallelReport captures the morsel-parallelism benchmark: the Figure-5
// suite evaluated at Parallelism 1 versus Workers.
type ParallelReport struct {
	// Workers is the Parallelism setting of the parallel runs; GOMAXPROCS
	// records how many CPUs Go could actually schedule them on — on a
	// single-core box the achievable speedup is bounded by 1x no matter
	// what Workers says, so readers need both numbers.
	Workers    int `json:"workers"`
	GOMAXPROCS int `json:"gomaxprocs"`
	BestOf     int `json:"best_of"`
	// SerialSuiteSeconds/ParallelSuiteSeconds sum the per-query times;
	// Speedup is their ratio.
	SerialSuiteSeconds   float64 `json:"serial_suite_seconds"`
	ParallelSuiteSeconds float64 `json:"parallel_suite_seconds"`
	Speedup              float64 `json:"speedup"`

	Queries []ParallelQuery `json:"queries"`
}

// MeasureParallel evaluates every Figure-5 query serially (Parallelism 1)
// and with a workers-wide morsel pool, timing each with a best-of-bestOf
// and checking the two result serializations byte for byte. workers
// follows the engine's Parallelism semantics (<= 0 resolves to
// GOMAXPROCS); a resolved count below 2 is an error rather than a
// silently different setting, since the figure exists to compare the pool
// against the serial path.
func MeasureParallel(env *Env, workers, bestOf int, timeout time.Duration) (*ParallelReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2 {
		return nil, fmt.Errorf("bench parallel: needs >= 2 workers to compare against serial, got %d (use -parallel)", workers)
	}
	if bestOf < 1 {
		bestOf = 1
	}
	serialEng := sparql.NewEngine(env.Store)
	serialEng.SetTimeout(timeout)
	serialEng.Parallelism = 1
	parEng := sparql.NewEngine(env.Store)
	parEng.SetTimeout(timeout)
	parEng.Parallelism = workers

	rep := &ParallelReport{Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0), BestOf: bestOf}
	for _, task := range Synthetic() {
		query, err := task.Frame(env).ToSPARQL()
		if err != nil {
			return nil, fmt.Errorf("bench parallel %s: %w", task.ID, err)
		}
		want, err := evalJSON(serialEng, query)
		if err != nil {
			return nil, fmt.Errorf("bench parallel %s: serial: %w", task.ID, err)
		}
		got, err := evalJSON(parEng, query)
		if err != nil {
			return nil, fmt.Errorf("bench parallel %s: parallel: %w", task.ID, err)
		}
		res, err := sparql.ReadJSON(bytes.NewReader(want))
		if err != nil {
			return nil, fmt.Errorf("bench parallel %s: decode: %w", task.ID, err)
		}
		pq := ParallelQuery{Task: task.ID, Rows: len(res.Rows), ByteIdentical: bytes.Equal(want, got)}

		pq.SerialSeconds, err = timeBestSeconds(bestOf, func() error {
			_, err := serialEng.Query(query)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench parallel %s: serial timing: %w", task.ID, err)
		}
		pq.ParallelSeconds, err = timeBestSeconds(bestOf, func() error {
			_, err := parEng.Query(query)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench parallel %s: parallel timing: %w", task.ID, err)
		}
		if pq.ParallelSeconds > 0 {
			pq.Speedup = pq.SerialSeconds / pq.ParallelSeconds
		}
		rep.SerialSuiteSeconds += pq.SerialSeconds
		rep.ParallelSuiteSeconds += pq.ParallelSeconds
		rep.Queries = append(rep.Queries, pq)
	}
	if rep.ParallelSuiteSeconds > 0 {
		rep.Speedup = rep.SerialSuiteSeconds / rep.ParallelSuiteSeconds
	}
	return rep, nil
}

// evalJSON evaluates query on eng and returns its SPARQL JSON body.
func evalJSON(eng *sparql.Engine, query string) ([]byte, error) {
	res, err := eng.Query(query)
	if err != nil {
		return nil, err
	}
	return res.MarshalJSON()
}

// FormatParallel renders the morsel-parallelism numbers as a text table.
func FormatParallel(rep *ParallelReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Parallel execution: Figure-5 suite, serial (1 worker) vs %d morsel workers (GOMAXPROCS=%d)\n",
		rep.Workers, rep.GOMAXPROCS)
	fmt.Fprintf(&sb, "%-6s %8s %14s %14s %10s %6s\n", "query", "rows", "serial (s)", "parallel (s)", "speedup", "same")
	for _, q := range rep.Queries {
		same := "yes"
		if !q.ByteIdentical {
			same = "NO"
		}
		fmt.Fprintf(&sb, "%-6s %8d %14.6f %14.6f %9.2fx %6s\n",
			q.Task, q.Rows, q.SerialSeconds, q.ParallelSeconds, q.Speedup, same)
	}
	fmt.Fprintf(&sb, "suite: %.4fs serial -> %.4fs parallel (%.2fx, best of %d)\n",
		rep.SerialSuiteSeconds, rep.ParallelSuiteSeconds, rep.Speedup, rep.BestOf)
	return sb.String()
}
