package bench

import (
	"fmt"

	"rdfframes"
)

// CaseStudies returns the paper's three case studies (§6.1), the workloads
// of Figures 3 and 4. Thresholds are scaled to the synthetic datasets (the
// paper uses 20/200 movies and 20 papers at DBpedia/DBLP scale).
func CaseStudies() []*Task {
	return []*Task{
		movieGenreTask(),
		topicModelingTask(),
		kgEmbeddingTask(),
	}
}

// movieGenreTask is case study 6.1.1: the dataframe behind movie genre
// classification — movies starring American or prolific actors, with movie
// and actor features and optional genre (Listing 3).
func movieGenreTask() *Task {
	const threshold = 10
	return &Task{
		ID:   "cs1",
		Name: "Movie genre classification (DBpedia)",
		Frame: func(env *Env) *rdfframes.RDFFrame {
			movies := env.DBpedia.FeatureDomainRange("dbpp:starring", "movie", "actor").
				Expand("actor",
					rdfframes.Out("dbpp:birthPlace", "actor_country"),
					rdfframes.Out("rdfs:label", "actor_name")).
				Expand("movie",
					rdfframes.Out("rdfs:label", "movie_name"),
					rdfframes.Out("dcterms:subject", "subject"),
					rdfframes.Out("dbpp:country", "movie_country"),
					rdfframes.Out("dbpo:genre", "genre").Opt()).
				Cache()
			american := movies.FilterRaw("actor_country",
				`regex(str(?actor_country), "United_States")`)
			prolific := movies.GroupBy("actor").CountDistinct("movie", "movie_count").
				Filter(rdfframes.Conds{"movie_count": {fmt.Sprintf(">=%d", threshold)}})
			return american.Join(prolific, "actor", rdfframes.FullOuterJoin).
				Join(movies, "actor", rdfframes.InnerJoin)
		},
		Expert: func(env *Env) string {
			return fmt.Sprintf(`
PREFIX dbpp: <http://dbpedia.org/property/>
PREFIX dbpo: <http://dbpedia.org/ontology/>
PREFIX dcterms: <http://purl.org/dc/terms/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT *
FROM <http://dbpedia.org>
WHERE {
  ?movie dbpp:starring ?actor .
  ?actor dbpp:birthPlace ?actor_country ;
         rdfs:label ?actor_name .
  ?movie rdfs:label ?movie_name ;
         dcterms:subject ?subject ;
         dbpp:country ?movie_country
  OPTIONAL { ?movie dbpo:genre ?genre }
  {
    { SELECT *
      WHERE {
        { SELECT *
          WHERE {
            ?movie dbpp:starring ?actor .
            ?actor dbpp:birthPlace ?actor_country ;
                   rdfs:label ?actor_name .
            ?movie rdfs:label ?movie_name ;
                   dcterms:subject ?subject ;
                   dbpp:country ?movie_country
            FILTER regex(str(?actor_country), "United_States")
            OPTIONAL { ?movie dbpo:genre ?genre }
          }
        }
        OPTIONAL {
          SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count)
          WHERE {
            ?movie dbpp:starring ?actor .
            ?actor dbpp:birthPlace ?actor_country ;
                   rdfs:label ?actor_name .
            ?movie rdfs:label ?movie_name ;
                   dcterms:subject ?subject ;
                   dbpp:country ?movie_country
            OPTIONAL { ?movie dbpo:genre ?genre }
          }
          GROUP BY ?actor
          HAVING ( COUNT(DISTINCT ?movie) >= %[1]d )
        }
      }
    }
    UNION
    { SELECT *
      WHERE {
        { SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count)
          WHERE {
            ?movie dbpp:starring ?actor .
            ?actor dbpp:birthPlace ?actor_country ;
                   rdfs:label ?actor_name .
            ?movie rdfs:label ?movie_name ;
                   dcterms:subject ?subject ;
                   dbpp:country ?movie_country
            OPTIONAL { ?movie dbpo:genre ?genre }
          }
          GROUP BY ?actor
          HAVING ( COUNT(DISTINCT ?movie) >= %[1]d )
        }
        OPTIONAL {
          SELECT *
          WHERE {
            ?movie dbpp:starring ?actor .
            ?actor dbpp:birthPlace ?actor_country ;
                   rdfs:label ?actor_name .
            ?movie rdfs:label ?movie_name ;
                   dcterms:subject ?subject ;
                   dbpp:country ?movie_country
            FILTER regex(str(?actor_country), "United_States")
            OPTIONAL { ?movie dbpo:genre ?genre }
          }
        }
      }
    }
  }
}`, threshold)
		},
		CheckRows: positive,
	}
}

// topicModelingTask is case study 6.1.2: titles of recent papers by
// prolific SIGMOD/VLDB authors (Listing 5).
func topicModelingTask() *Task {
	const threshold = 12
	return &Task{
		ID:   "cs2",
		Name: "Topic modeling (DBLP)",
		Frame: func(env *Env) *rdfframes.RDFFrame {
			papers := env.DBLP.Entities("swrc:InProceedings", "paper").
				Expand("paper",
					rdfframes.Out("dc:creator", "author"),
					rdfframes.Out("dcterm:issued", "date"),
					rdfframes.Out("swrc:series", "conference"),
					rdfframes.Out("dc:title", "title")).
				Cache()
			authors := papers.
				FilterRaw("date", "year(xsd:dateTime(?date)) >= 2005").
				Filter(rdfframes.Conds{"conference": {"In(dblprc:vldb, dblprc:sigmod)"}}).
				GroupBy("author").Count("paper", "n_papers").
				Filter(rdfframes.Conds{"n_papers": {fmt.Sprintf(">=%d", threshold)}}).
				FilterRaw("date", "year(xsd:dateTime(?date)) >= 2005")
			return papers.Join(authors, "author", rdfframes.InnerJoin).SelectCols("title")
		},
		Expert: func(env *Env) string {
			return fmt.Sprintf(`
PREFIX swrc: <http://swrc.ontoware.org/ontology#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX dc: <http://purl.org/dc/elements/1.1/>
PREFIX dcterm: <http://purl.org/dc/terms/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
PREFIX dblprc: <http://dblp.l3s.de/d2r/resource/conferences/>
SELECT ?title
FROM <http://dblp.l3s.de>
WHERE {
  ?paper dc:title ?title ;
         rdf:type swrc:InProceedings ;
         dcterm:issued ?date ;
         dc:creator ?author
  FILTER ( year(xsd:dateTime(?date)) >= 2005 )
  { SELECT ?author
    WHERE {
      ?paper rdf:type swrc:InProceedings ;
             swrc:series ?conference ;
             dc:creator ?author ;
             dcterm:issued ?date
      FILTER ( ( year(xsd:dateTime(?date)) >= 2005 )
            && ( ?conference IN (dblprc:vldb, dblprc:sigmod) ) )
    }
    GROUP BY ?author
    HAVING ( COUNT(?paper) >= %d )
  }
}`, threshold)
		},
		CheckRows: positive,
	}
}

// kgEmbeddingTask is case study 6.1.3: all entity-to-entity triples
// (Listing 7).
func kgEmbeddingTask() *Task {
	return &Task{
		ID:   "cs3",
		Name: "Knowledge graph embedding (DBLP)",
		Frame: func(env *Env) *rdfframes.RDFFrame {
			return env.DBLP.FeatureDomainRange("pred", "sub", "obj").
				Filter(rdfframes.Conds{"obj": {"isURI"}})
		},
		Expert: func(env *Env) string {
			return `
SELECT *
FROM <http://dblp.l3s.de>
WHERE {
  ?sub ?pred ?obj .
  FILTER ( isIRI(?obj) )
}`
		},
		CheckRows: positive,
	}
}

func positive(n int) error {
	if n <= 0 {
		return fmt.Errorf("bench: expected non-empty result, got %d rows", n)
	}
	return nil
}
