// Package bench defines the paper's evaluation workloads (§6) and the
// harness that regenerates every figure: the three case studies
// (Figures 3 and 4) and the 15-query synthetic workload (Figure 5), each
// runnable under every approach the paper compares — RDFFrames, naive query
// generation, expert-written SPARQL, navigation + dataframes,
// per-pattern SPARQL + dataframes, and scan (rdflib-style) + dataframes.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"rdfframes"
	"rdfframes/internal/baselines"
	"rdfframes/internal/client"
	"rdfframes/internal/core"
	"rdfframes/internal/dataframe"
	"rdfframes/internal/datagen"
	"rdfframes/internal/obs"
	"rdfframes/internal/rdf"
	"rdfframes/internal/server"
	"rdfframes/internal/sparql"
	"rdfframes/internal/store"
)

// Env is a fully-populated benchmark environment: the three synthetic
// graphs loaded into one engine, served over a real HTTP SPARQL endpoint
// (matching the paper's setup, where every approach that uses the engine
// pays the serialization cost of the data it moves), plus the serialized
// dumps the rdflib-style baseline parses.
type Env struct {
	Store  *store.Store
	Engine *sparql.Engine
	Client client.Client // HTTP client against Endpoint, with pagination
	// Metrics backs the environment's endpoint: engine and serving-layer
	// instruments accumulate here across every figure, so the harness can
	// snapshot counter movement around each workload.
	Metrics *obs.Registry
	Triples map[string][]rdf.Triple
	// NTriples holds each graph serialized as N-Triples; the scan baseline
	// parses it on every run, as an ad-hoc rdflib script would.
	NTriples map[string][]byte
	Endpoint string

	DBpedia *rdfframes.KnowledgeGraph
	DBLP    *rdfframes.KnowledgeGraph
	YAGO    *rdfframes.KnowledgeGraph

	srv *httptest.Server
	// deadline bounds client-side baseline work during Measure.
	deadline time.Time
}

// Close shuts down the environment's HTTP endpoint.
func (e *Env) Close() {
	if e.srv != nil {
		e.srv.Close()
	}
}

// SnapshotMetrics flattens the environment registry's cumulative series —
// counters, plus histogram _sum/_count — into a name -> value sample.
// Taking one before and one after a figure run yields the counter movement
// that run caused. Gauges are skipped: a delta of an instantaneous value
// (heap size, in-flight queries) is noise, not attribution.
func (e *Env) SnapshotMetrics() MetricsSample {
	if e.Metrics == nil {
		return MetricsSample{}
	}
	return snapshotCounters(e.Metrics)
}

// snapshotCounters flattens a registry's cumulative series into a sample.
func snapshotCounters(reg *obs.Registry) MetricsSample {
	s := MetricsSample{}
	reg.Each(func(name string, typ obs.MetricType, value float64) {
		if typ == obs.TypeCounter {
			s[name] = value
		}
	})
	return s
}

// Scale selects dataset sizes.
type Scale int

// Scales.
const (
	// ScaleSmall is for tests: a few thousand triples per graph.
	ScaleSmall Scale = iota
	// ScaleBench is for benchmark runs: tens of thousands of triples.
	ScaleBench
)

// NewEnv generates the datasets at the given scale and loads them.
func NewEnv(scale Scale) (*Env, error) {
	dbpCfg, dblpCfg, yagoCfg := datagen.SmallDBpedia(), datagen.SmallDBLP(), datagen.SmallYAGO()
	if scale == ScaleBench {
		dbpCfg, dblpCfg, yagoCfg = datagen.BenchDBpedia(), datagen.BenchDBLP(), datagen.BenchYAGO()
	}
	triples := map[string][]rdf.Triple{
		datagen.DBpediaURI: datagen.DBpedia(dbpCfg),
		datagen.DBLPURI:    datagen.DBLP(dblpCfg),
		datagen.YAGOURI:    datagen.YAGO(yagoCfg),
	}
	st := store.New()
	// Fixed load order: dictionary-id assignment and the stats epoch must
	// be deterministic so repeated runs (and golden EXPLAIN plans) are
	// reproducible.
	for _, uri := range []string{datagen.DBpediaURI, datagen.DBLPURI, datagen.YAGOURI} {
		if err := st.AddAll(uri, triples[uri]); err != nil {
			return nil, err
		}
	}
	return newEnv(st, triples)
}

// NewEnvFromStore builds a benchmark environment around an already-loaded
// store — e.g. one reopened from a snapshot or parsed from on-disk dumps —
// deriving the decoded triple slices the client-side baselines need.
func NewEnvFromStore(st *store.Store) (*Env, error) {
	triples := make(map[string][]rdf.Triple, len(st.GraphURIs()))
	for _, uri := range st.GraphURIs() {
		g := st.Graph(uri)
		ts := make([]rdf.Triple, 0, g.Len())
		for _, tr := range g.Triples() {
			ts = append(ts, rdf.Triple{
				S: st.Dict().Decode(tr.S),
				P: st.Dict().Decode(tr.P),
				O: st.Dict().Decode(tr.O),
			})
		}
		triples[uri] = ts
	}
	return newEnv(st, triples)
}

func newEnv(st *store.Store, triples map[string][]rdf.Triple) (*Env, error) {
	nt := make(map[string][]byte, len(triples))
	for uri, ts := range triples {
		var buf bytes.Buffer
		if err := rdf.WriteNTriples(&buf, ts); err != nil {
			return nil, err
		}
		nt[uri] = buf.Bytes()
	}
	eng := sparql.NewEngine(st)
	srv := server.New(eng)
	reg := obs.NewRegistry()
	srv.EnableMetrics(reg)
	ts := httptest.NewServer(srv.Handler())
	endpoint := ts.URL + "/sparql"
	httpClient := client.NewHTTPClient(endpoint, 100000)
	httpClient.HTTP = &http.Client{} // no client timeout; the engine deadline bounds queries
	return &Env{
		Store:    st,
		Engine:   eng,
		Client:   httpClient,
		Metrics:  reg,
		Triples:  triples,
		NTriples: nt,
		Endpoint: endpoint,
		srv:      ts,
		DBpedia:  rdfframes.NewKnowledgeGraph(datagen.DBpediaURI, datagen.DBpediaPrefixes()),
		DBLP:     rdfframes.NewKnowledgeGraph(datagen.DBLPURI, datagen.DBLPPrefixes()),
		YAGO:     rdfframes.NewKnowledgeGraph(datagen.YAGOURI, datagen.YAGOPrefixes()),
	}, nil
}

// Approach names one of the compared strategies.
type Approach string

// The compared approaches (paper §6.3.3).
const (
	RDFFrames    Approach = "RDFFrames"
	Naive        Approach = "Naive Query Generation"
	Expert       Approach = "Expert SPARQL"
	NavPandas    Approach = "Navigation + dataframes"
	SPARQLPandas Approach = "SPARQL + dataframes"
	ScanPandas   Approach = "rdflib-style scan + dataframes"
)

// Task is one benchmark workload: a frame builder plus the equivalent
// expert-written SPARQL query.
type Task struct {
	ID     string // "cs1".."cs3", "Q1".."Q15"
	Name   string
	Frame  func(env *Env) *rdfframes.RDFFrame
	Expert func(env *Env) string
	// CheckRows, when non-nil, sanity-checks the result cardinality.
	CheckRows func(n int) error
}

// Run executes the task under the approach and returns the resulting table.
func (t *Task) Run(env *Env, a Approach) (*dataframe.DataFrame, error) {
	frame := t.Frame(env)
	switch a {
	case RDFFrames:
		return frame.Execute(env.Client)
	case Naive:
		query, err := frame.ToNaiveSPARQL()
		if err != nil {
			return nil, err
		}
		res, err := env.Client.Select(query)
		if err != nil {
			return nil, err
		}
		return rdfframes.ResultsToDataFrame(res), nil
	case Expert:
		res, err := env.Client.Select(t.Expert(env))
		if err != nil {
			return nil, err
		}
		return rdfframes.ResultsToDataFrame(res), nil
	case NavPandas:
		return baselines.RunUntil(chainOf(frame), &baselines.EngineNav{Client: env.Client, Batch: true}, env.deadline)
	case SPARQLPandas:
		return baselines.RunUntil(chainOf(frame), &baselines.EngineNav{Client: env.Client, Batch: false}, env.deadline)
	case ScanPandas:
		// Parse the serialized dumps on every run, like an ad-hoc script.
		parsed := make(map[string][]rdf.Triple, len(env.NTriples))
		for uri, data := range env.NTriples {
			ts, err := rdf.NewNTriplesReader(bytes.NewReader(data)).ReadAll()
			if err != nil {
				return nil, err
			}
			parsed[uri] = ts
		}
		return baselines.RunUntil(chainOf(frame), baselines.NewScanNav(parsed), env.deadline)
	}
	return nil, fmt.Errorf("bench: unknown approach %q", a)
}

// chainOf extracts the recorded operator chain from a frame via its query
// model inputs; frames expose it through an internal accessor.
func chainOf(f *rdfframes.RDFFrame) *core.Chain { return rdfframes.ChainOf(f) }

// Measurement is one timed run.
type Measurement struct {
	Task     string
	Approach Approach
	Duration time.Duration
	Rows     int
	Err      error
}

// ErrWallClock reports a measurement abandoned at the wall-clock deadline
// (client-side baselines do their work outside the engine, so the engine
// deadline cannot stop them).
var ErrWallClock = fmt.Errorf("bench: wall-clock timeout")

// Measure times the task under the approach, enforcing the timeout through
// the engine (mirroring the paper's 30-minute cap, scaled down) plus a
// wall-clock cutoff for work done outside the engine. A run that exceeds
// the wall clock is abandoned AND cancelled: the run's HTTP requests carry
// a context that the cutoff cancels, which aborts the in-flight request
// and — through the server's request context — stops the evaluation and
// its morsel workers within one tick window, instead of letting the
// detached goroutine evaluate to completion and pollute later timings.
func (t *Task) Measure(env *Env, a Approach, timeout time.Duration) Measurement {
	scoped := *env
	env.Engine.SetTimeout(timeout) // shared HTTP endpoint; stragglers may still read it
	scoped.deadline = time.Now().Add(timeout)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if hc, ok := scoped.Client.(*client.HTTPClient); ok {
		scoped.Client = hc.WithContext(ctx)
	}

	done := make(chan Measurement, 1)
	go func() {
		start := time.Now()
		df, err := t.Run(&scoped, a)
		m := Measurement{Task: t.ID, Approach: a, Duration: time.Since(start), Err: err}
		if err == nil {
			m.Rows = df.Len()
			if t.CheckRows != nil {
				m.Err = t.CheckRows(df.Len())
			}
		}
		done <- m
	}()
	select {
	case m := <-done:
		return m
	case <-time.After(timeout + timeout/2):
		cancel() // stop the straggler's requests and their evaluations
		return Measurement{Task: t.ID, Approach: a, Duration: timeout, Err: ErrWallClock}
	}
}
