package bench

import (
	"bytes"
	"testing"
	"time"

	"rdfframes/internal/sparql"
)

// TestWCOJByteIdenticalFigure5 is the WCOJ operator's correctness property:
// for every Figure-5 query, evaluation with the worst-case-optimal join
// available — at parallelism 1 and on a 4-worker morsel pool —
// serializes byte-identically to the binary hash-join pipeline
// (DisableWCOJ). Run under -race in CI, this also hammers the parallel
// trie enumeration's range-partitioned walkers.
func TestWCOJByteIdenticalFigure5(t *testing.T) {
	env := sharedEnv(t)
	bin := sparql.NewEngine(env.Store)
	bin.SetTimeout(time.Minute)
	bin.Parallelism = 1
	bin.DisableWCOJ = true
	wcoj1 := sparql.NewEngine(env.Store)
	wcoj1.SetTimeout(time.Minute)
	wcoj1.Parallelism = 1
	wcoj4 := sparql.NewEngine(env.Store)
	wcoj4.SetTimeout(time.Minute)
	wcoj4.Parallelism = 4

	for _, task := range Synthetic() {
		t.Run(task.ID, func(t *testing.T) {
			query, err := task.Frame(env).ToSPARQL()
			if err != nil {
				t.Fatal(err)
			}
			want, err := evalJSON(bin, query)
			if err != nil {
				t.Fatalf("binary: %v", err)
			}
			got1, err := evalJSON(wcoj1, query)
			if err != nil {
				t.Fatalf("wcoj serial: %v", err)
			}
			got4, err := evalJSON(wcoj4, query)
			if err != nil {
				t.Fatalf("wcoj parallel: %v", err)
			}
			if !bytes.Equal(want, got1) {
				t.Errorf("wcoj serial result differs from binary pipeline")
			}
			if !bytes.Equal(want, got4) {
				t.Errorf("wcoj 4-worker result differs from binary pipeline")
			}
		})
	}
	if seg, _, _, _ := wcoj1.WCOJStats(); seg == 0 {
		t.Error("no Figure-5 query executed a WCOJ segment; the property test is vacuous")
	}
	if seg, _, _, _ := wcoj4.WCOJStats(); seg == 0 {
		t.Error("no Figure-5 query executed a parallel WCOJ segment")
	}
	if seg, _, _, _ := bin.WCOJStats(); seg != 0 {
		t.Error("DisableWCOJ engine executed a WCOJ segment")
	}
}

// TestMeasureWCOJSmoke runs the WCOJ benchmark end to end at test scale and
// sanity-checks the report shape benchcheck relies on.
func TestMeasureWCOJSmoke(t *testing.T) {
	env := sharedEnv(t)
	rep, err := MeasureWCOJ(env, 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Queries) != len(Synthetic()) {
		t.Fatalf("queries = %d, want %d", len(rep.Queries), len(Synthetic()))
	}
	if rep.ChosenQueries == 0 {
		t.Fatal("cost model chose WCOJ for no Figure-5 query")
	}
	for _, q := range rep.Queries {
		if !q.ByteIdentical {
			t.Errorf("%s: not byte-identical", q.Task)
		}
		if q.BinarySeconds <= 0 || q.WCOJSeconds <= 0 {
			t.Errorf("%s: empty timing", q.Task)
		}
		if q.Chosen && q.Seeks == 0 {
			t.Errorf("%s: chosen but recorded no iterator seeks", q.Task)
		}
		if !q.Chosen && (q.Seeks != 0 || q.Backtracks != 0) {
			t.Errorf("%s: not chosen but moved WCOJ counters", q.Task)
		}
	}
}
