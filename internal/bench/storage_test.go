package bench

import (
	"bytes"
	"testing"

	"rdfframes/internal/snapshot"
)

// TestSnapshotRoundTripFigure5ByteIdentical is the lossless-reopen property
// check: for every query of the Figure-5 suite (expert-written and the
// RDFFrames-generated form), a store reopened from a snapshot must return
// byte-identical SPARQL JSON to the store the snapshot was taken from.
// Snapshots preserve dictionary ids and triple insertion order, so even row
// order survives — which the client's LIMIT/OFFSET pagination depends on.
func TestSnapshotRoundTripFigure5ByteIdentical(t *testing.T) {
	env, err := NewEnv(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	var buf bytes.Buffer
	if err := snapshot.Write(&buf, env.Store); err != nil {
		t.Fatal(err)
	}
	reopened, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	env2, err := NewEnvFromStore(reopened)
	if err != nil {
		t.Fatal(err)
	}
	defer env2.Close()

	for _, task := range Synthetic() {
		queries := map[string]string{"expert": task.Expert(env)}
		if generated, err := task.Frame(env).ToSPARQL(); err == nil {
			queries["rdfframes"] = generated
		} else {
			t.Fatalf("%s: generating SPARQL: %v", task.ID, err)
		}
		for kind, q := range queries {
			want := queryJSON(t, env, q, task.ID)
			got := queryJSON(t, env2, q, task.ID)
			if !bytes.Equal(want, got) {
				t.Fatalf("%s (%s): snapshot-reopened store diverges from original\noriginal:  %d bytes\nreopened:  %d bytes",
					task.ID, kind, len(want), len(got))
			}
		}
	}
}

func queryJSON(t *testing.T, env *Env, query, task string) []byte {
	t.Helper()
	res, err := env.Engine.Query(query)
	if err != nil {
		t.Fatalf("%s: %v", task, err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMeasureStorage(t *testing.T) {
	env, err := NewEnv(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	rep, err := MeasureStorage(env, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Graphs != 3 || rep.Triples != env.Store.Len() {
		t.Fatalf("report shape: %+v", rep)
	}
	if rep.SnapshotBytes <= 0 || rep.NTriplesBytes <= 0 {
		t.Fatalf("sizes not recorded: %+v", rep)
	}
	if rep.ParseSeconds <= 0 || rep.ReopenSeconds <= 0 || rep.ParallelLoadSeconds <= 0 {
		t.Fatalf("timings not recorded: %+v", rep)
	}
	if rep.ReopenSpeedup <= 1 {
		t.Fatalf("snapshot reopen slower than re-parse: %+v", rep)
	}
	if FormatStorage(rep) == "" {
		t.Fatal("empty text rendering")
	}
}
