package bench

import (
	"bytes"
	"testing"
	"time"

	"rdfframes/internal/sparql"
)

// TestPlannerByteIdenticalFigure5 is the planner's correctness property:
// for every Figure-5 query, evaluation under the cost-based planner — at
// parallelism 1 and on a 4-worker morsel pool — serializes byte-identically
// to the pre-planner greedy heuristic. Run under -race in CI, this also
// hammers the planner's shared-plan paths from the pool workers.
func TestPlannerByteIdenticalFigure5(t *testing.T) {
	env := sharedEnv(t)
	heur := sparql.NewEngine(env.Store)
	heur.SetTimeout(time.Minute)
	heur.Parallelism = 1
	heur.DisableOptimizer = true
	opt1 := sparql.NewEngine(env.Store)
	opt1.SetTimeout(time.Minute)
	opt1.Parallelism = 1
	opt4 := sparql.NewEngine(env.Store)
	opt4.SetTimeout(time.Minute)
	opt4.Parallelism = 4

	for _, task := range Synthetic() {
		t.Run(task.ID, func(t *testing.T) {
			query, err := task.Frame(env).ToSPARQL()
			if err != nil {
				t.Fatal(err)
			}
			want, err := evalJSON(heur, query)
			if err != nil {
				t.Fatalf("heuristic: %v", err)
			}
			got1, err := evalJSON(opt1, query)
			if err != nil {
				t.Fatalf("optimized serial: %v", err)
			}
			got4, err := evalJSON(opt4, query)
			if err != nil {
				t.Fatalf("optimized parallel: %v", err)
			}
			if !bytes.Equal(want, got1) {
				t.Errorf("optimized serial result differs from heuristic")
			}
			if !bytes.Equal(want, got4) {
				t.Errorf("optimized 4-worker result differs from heuristic")
			}
		})
	}
}

// TestMeasurePlannerSmoke runs the planner benchmark end to end at test
// scale and sanity-checks the report shape benchcheck relies on.
func TestMeasurePlannerSmoke(t *testing.T) {
	env := sharedEnv(t)
	rep, err := MeasurePlanner(env, 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Queries) != len(Synthetic()) {
		t.Fatalf("queries = %d, want %d", len(rep.Queries), len(Synthetic()))
	}
	for _, q := range rep.Queries {
		if !q.ByteIdentical {
			t.Errorf("%s: not byte-identical", q.Task)
		}
		if q.HeuristicSeconds <= 0 || q.OptimizedSeconds <= 0 {
			t.Errorf("%s: empty timing", q.Task)
		}
	}
}
