package bench

import (
	"strings"
	"sync"
	"testing"
	"time"

	"rdfframes/internal/sparql"
)

var (
	envOnce sync.Once
	testEnv *Env
	envErr  error
)

func sharedEnv(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() { testEnv, envErr = NewEnv(ScaleSmall) })
	if envErr != nil {
		t.Fatal(envErr)
	}
	return testEnv
}

func TestAllTasksDefined(t *testing.T) {
	if n := len(CaseStudies()); n != 3 {
		t.Fatalf("case studies = %d, want 3", n)
	}
	if n := len(Synthetic()); n != 15 {
		t.Fatalf("synthetic queries = %d, want 15", n)
	}
	seen := map[string]bool{}
	for _, task := range append(CaseStudies(), Synthetic()...) {
		if seen[task.ID] {
			t.Fatalf("duplicate task id %s", task.ID)
		}
		seen[task.ID] = true
	}
}

// TestFramesCompileAndParse checks every task's RDFFrames and naive queries
// compile and are valid SPARQL, and every expert query parses.
func TestFramesCompileAndParse(t *testing.T) {
	env := sharedEnv(t)
	for _, task := range append(CaseStudies(), Synthetic()...) {
		t.Run(task.ID, func(t *testing.T) {
			frame := task.Frame(env)
			q, err := frame.ToSPARQL()
			if err != nil {
				t.Fatalf("ToSPARQL: %v", err)
			}
			if _, err := sparql.Parse(q); err != nil {
				t.Fatalf("generated query does not parse: %v\n%s", err, q)
			}
			nq, err := frame.ToNaiveSPARQL()
			if err != nil {
				t.Fatalf("ToNaiveSPARQL: %v", err)
			}
			if _, err := sparql.Parse(nq); err != nil {
				t.Fatalf("naive query does not parse: %v\n%s", err, nq)
			}
			if _, err := sparql.Parse(task.Expert(env)); err != nil {
				t.Fatalf("expert query does not parse: %v\n%s", err, task.Expert(env))
			}
		})
	}
}

// TestTasksReturnRows runs every task under RDFFrames and checks the row
// expectations, ensuring the synthetic datasets actually exercise each
// query.
func TestTasksReturnRows(t *testing.T) {
	env := sharedEnv(t)
	for _, task := range append(CaseStudies(), Synthetic()...) {
		t.Run(task.ID, func(t *testing.T) {
			df, err := task.Run(env, RDFFrames)
			if err != nil {
				t.Fatal(err)
			}
			if task.CheckRows != nil {
				if err := task.CheckRows(df.Len()); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestSyntheticApproachesAgree verifies RDFFrames, naive, and expert
// produce identical row bags for every synthetic query.
func TestSyntheticApproachesAgree(t *testing.T) {
	env := sharedEnv(t)
	for _, task := range Synthetic() {
		t.Run(task.ID, func(t *testing.T) {
			if err := VerifyTask(env, task, []Approach{Naive, Expert}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCaseStudyApproachesAgree verifies all six approaches agree on the
// case studies.
func TestCaseStudyApproachesAgree(t *testing.T) {
	env := sharedEnv(t)
	for _, task := range CaseStudies() {
		t.Run(task.ID, func(t *testing.T) {
			approaches := []Approach{Naive, Expert, NavPandas, SPARQLPandas, ScanPandas}
			if err := VerifyTask(env, task, approaches); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMeasureReportsTimeout(t *testing.T) {
	env := sharedEnv(t)
	task := CaseStudies()[0]
	m := task.Measure(env, Naive, time.Nanosecond)
	if m.Err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestFigureFormatting(t *testing.T) {
	env := sharedEnv(t)
	rows := runTasks(env, CaseStudies()[2:3], []Approach{Expert, RDFFrames}, time.Minute, 1)
	out := FormatFigure("Figure 4 excerpt", rows, []Approach{Expert, RDFFrames})
	if !strings.Contains(out, "cs3") || !strings.Contains(out, "Expert") {
		t.Fatalf("format output missing fields:\n%s", out)
	}
	f5 := runTasks(env, Synthetic()[:2], []Approach{Expert, Naive, RDFFrames}, time.Minute, 2)
	out5 := FormatFigure5(f5)
	if !strings.Contains(out5, "naive/expert") {
		t.Fatalf("figure 5 output malformed:\n%s", out5)
	}
}
