package bench

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"rdfframes/internal/loadgen"
	"rdfframes/internal/obs"
	"rdfframes/internal/server"
	"rdfframes/internal/sparql"
)

// TrafficStage is one load stage of the traffic benchmark: a closed-loop
// concurrency step or the open-loop overload probe, with latencies, shed
// accounting, and the per-reason shed deltas read off the server's /stats.
type TrafficStage struct {
	loadgen.Result
	// ShedByReason is the delta of the server's per-reason shed counters
	// (capacity, cost, draining) across the stage.
	ShedByReason map[string]uint64 `json:"shed_by_reason"`
}

// TrafficStampede records the stampede-protection check: N concurrent cold
// requests for the same query against a fresh endpoint.
type TrafficStampede struct {
	Clients int `json:"clients"`
	// Evaluations is how many engine evaluations the stampede cost;
	// singleflight coalescing makes this exactly 1.
	Evaluations uint64 `json:"evaluations"`
	// ByteIdentical reports that every client received the same body.
	ByteIdentical bool `json:"byte_identical"`
}

// TrafficReport captures the serving layer under multi-client load: an
// admission-controlled caching endpoint driven through a closed-loop
// concurrency ramp and an open-loop overload stage, plus the stampede
// check. The robustness contract aggregates across all stages: zero
// unexpected errors, every shed carrying Retry-After, and every 200 body
// byte-identical to its reference.
type TrafficReport struct {
	// Queries is the size of the Figure-5 mix; ZipfS its skew.
	Queries int     `json:"queries"`
	ZipfS   float64 `json:"zipf_s"`
	// MaxInFlight and MaxQueryCost are the admission limits under test.
	MaxInFlight  int     `json:"max_in_flight"`
	MaxQueryCost float64 `json:"max_query_cost"`
	// CostShedTask is the query the cost budget deliberately excludes
	// (empty when the estimates gave no headroom to split on).
	CostShedTask string `json:"cost_shed_task,omitempty"`

	Stages   []TrafficStage  `json:"stages"`
	Stampede TrafficStampede `json:"stampede"`

	// RetryAfterAlways is true iff no shed in any stage lacked Retry-After.
	RetryAfterAlways bool `json:"retry_after_always"`
	// UnexpectedErrors sums transport failures and non-200/429/503
	// statuses across stages; a correct server keeps this at 0.
	UnexpectedErrors uint64 `json:"unexpected_errors"`
	// IdentityViolations sums 200 bodies differing from their reference.
	IdentityViolations uint64 `json:"identity_violations"`

	// Admission is the endpoint's final admission-stats snapshot.
	Admission server.AdmissionStats `json:"admission"`

	// Metrics is the final cumulative-counter snapshot of the traffic
	// endpoint's registry. The endpoint is fresh per run, so these are the
	// run's totals: HTTP outcomes by code, cache hits/misses, singleflight
	// roles, evaluations, slow-log entries.
	Metrics MetricsSample `json:"metrics,omitempty"`
}

// trafficZipfS is the mix skew: with 15 queries, the top query draws
// roughly half the traffic — hot enough to exercise the result cache and
// singleflight, skewed like real dashboard workloads.
const trafficZipfS = 1.3

// MeasureTraffic runs the multi-client load benchmark against an
// admission-controlled caching endpoint over env's store: a closed-loop
// ramp over the given client counts, then an open-loop stage offered at
// 1.5x the best closed-loop throughput (an overload the server must answer
// with sheds, not errors), then the stampede check on a fresh endpoint.
// stageDur is the wall-clock length of each load stage; ramp the
// closed-loop client counts; stampedeClients the width of the stampede.
// slow, when non-nil, arms the endpoint's slow-query log for the duration
// of the run — under an overload ramp it captures exactly the queries
// whose latency the shed gates were protecting.
func MeasureTraffic(env *Env, stageDur time.Duration, ramp []int, stampedeClients int, timeout time.Duration, slow *obs.SlowLog) (*TrafficReport, error) {
	if len(ramp) == 0 {
		ramp = []int{1, 8, 32}
	}
	if stampedeClients < 2 {
		stampedeClients = 16
	}

	eng := sparql.NewEngine(env.Store)
	eng.SetTimeout(timeout)
	eng.EnableCache(sparql.DefaultPlanCacheEntries, sparql.DefaultResultCacheRows)
	srv := server.New(eng)
	// Capacity: a handful of slots over the available cores — enough to
	// keep the engine busy, small enough that the ramp's upper stages
	// overcommit it and capacity shedding actually engages.
	srv.MaxInFlight = 2*runtime.GOMAXPROCS(0) + 2
	treg := obs.NewRegistry()
	srv.EnableMetrics(treg)
	if slow != nil {
		srv.SetSlowLog(slow)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	endpoint := ts.URL + "/sparql"

	rep := &TrafficReport{ZipfS: trafficZipfS, MaxInFlight: srv.MaxInFlight, RetryAfterAlways: true}

	// Build the Figure-5 mix, cheapest-first so the Zipfian head lands on
	// fast queries (the realistic hot/cold split), and collect reference
	// bodies before any admission limits apply.
	type mixEntry struct {
		task  string
		query string
		cost  float64
	}
	var mix []mixEntry
	for _, task := range Synthetic() {
		query, err := task.Frame(env).ToSPARQL()
		if err != nil {
			return nil, fmt.Errorf("bench traffic %s: %w", task.ID, err)
		}
		cost, ok, err := eng.EstimateCost(query)
		if err != nil || !ok {
			return nil, fmt.Errorf("bench traffic %s: cost estimate failed (ok=%v): %v", task.ID, ok, err)
		}
		mix = append(mix, mixEntry{task: task.ID, query: query, cost: cost})
	}
	sort.SliceStable(mix, func(i, j int) bool { return mix[i].cost < mix[j].cost })
	rep.Queries = len(mix)

	queries := make([]loadgen.Query, len(mix))
	expect := make(map[string][]byte, len(mix))
	for i, m := range mix {
		queries[i] = loadgen.Query{ID: m.task, URL: endpoint + "?query=" + url.QueryEscape(m.query)}
		body, err := fetchBody(endpoint, m.query)
		if err != nil {
			return nil, fmt.Errorf("bench traffic %s: reference: %w", m.task, err)
		}
		expect[m.task] = body
	}

	// Cost budget: exclude exactly the most expensive query when the
	// estimates leave a gap to split on. Requests for it shed with 429
	// deterministically, exercising the cost gate mid-traffic.
	if n := len(mix); n >= 2 && mix[n-1].cost > mix[n-2].cost {
		rep.MaxQueryCost = (mix[n-1].cost + mix[n-2].cost) / 2
		rep.CostShedTask = mix[n-1].task
		srv.MaxQueryCost = rep.MaxQueryCost
	}

	runStage := func(cfg loadgen.Config) error {
		before := srv.AdmissionStats()
		res, err := loadgen.Run(cfg)
		if err != nil {
			return err
		}
		after := srv.AdmissionStats()
		stage := TrafficStage{Result: *res, ShedByReason: map[string]uint64{}}
		for reason, n := range after.Shed {
			stage.ShedByReason[reason] = n - before.Shed[reason]
		}
		if res.ShedNoRetryAfter > 0 {
			rep.RetryAfterAlways = false
		}
		rep.UnexpectedErrors += res.Errors
		rep.IdentityViolations += res.IdentityViolations
		rep.Stages = append(rep.Stages, stage)
		return nil
	}

	base := loadgen.Config{
		Queries:  queries,
		Expect:   expect,
		Duration: stageDur,
		ZipfS:    trafficZipfS,
		Seed:     1,
	}
	var bestQPS float64
	for _, clients := range ramp {
		cfg := base
		cfg.Clients = clients
		cfg.Seed = int64(clients) // distinct but reproducible per stage
		if err := runStage(cfg); err != nil {
			return nil, fmt.Errorf("bench traffic: closed loop %d clients: %w", clients, err)
		}
		if qps := rep.Stages[len(rep.Stages)-1].QPS; qps > bestQPS {
			bestQPS = qps
		}
	}

	// Open loop at 1.5x the best sustained throughput: offered load beyond
	// capacity, which the admission gates must absorb as sheds.
	openRate := 1.5 * bestQPS
	if openRate < 10 {
		openRate = 10
	}
	cfg := base
	cfg.RatePerSec = openRate
	cfg.Seed = 99991
	if err := runStage(cfg); err != nil {
		return nil, fmt.Errorf("bench traffic: open loop: %w", err)
	}

	rep.Admission = srv.AdmissionStats()
	rep.Metrics = snapshotCounters(treg)

	// Stampede: a fresh caching endpoint (cold result cache), N concurrent
	// identical requests, exactly one evaluation, identical bodies.
	st, err := measureStampede(env, stampedeClients, timeout)
	if err != nil {
		return nil, err
	}
	rep.Stampede = *st
	return rep, nil
}

// measureStampede fires n concurrent identical cold requests at a fresh
// caching endpoint and counts the engine evaluations behind them.
func measureStampede(env *Env, n int, timeout time.Duration) (*TrafficStampede, error) {
	eng := sparql.NewEngine(env.Store)
	eng.SetTimeout(timeout)
	eng.EnableCache(sparql.DefaultPlanCacheEntries, sparql.DefaultResultCacheRows)
	ts := httptest.NewServer(server.New(eng).Handler())
	defer ts.Close()

	task := Synthetic()[0]
	query, err := task.Frame(env).ToSPARQL()
	if err != nil {
		return nil, err
	}
	u := ts.URL + "/sparql?query=" + url.QueryEscape(query)

	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(u)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	st := &TrafficStampede{Clients: n, ByteIdentical: true}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, fmt.Errorf("bench traffic: stampede client %d: %w", i, errs[i])
		}
		if string(bodies[i]) != string(bodies[0]) {
			st.ByteIdentical = false
		}
	}
	st.Evaluations = eng.Evaluations()
	return st, nil
}

// FormatTraffic renders the traffic benchmark as a text table.
func FormatTraffic(rep *TrafficReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Serving under load: %d-query Zipfian mix (s=%.1f), max in-flight %d",
		rep.Queries, rep.ZipfS, rep.MaxInFlight)
	if rep.CostShedTask != "" {
		fmt.Fprintf(&sb, ", cost budget %.0f (sheds %s)", rep.MaxQueryCost, rep.CostShedTask)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-14s %8s %8s %8s %7s %10s %10s %10s\n",
		"stage", "requests", "ok", "shed", "rate", "p50 (ms)", "p95 (ms)", "p99 (ms)")
	for _, st := range rep.Stages {
		label := fmt.Sprintf("closed x%d", st.Clients)
		if st.Mode == "open" {
			label = fmt.Sprintf("open %.0f/s", st.RatePerSec)
		}
		fmt.Fprintf(&sb, "%-14s %8d %8d %8d %6.1f%% %10.2f %10.2f %10.2f\n",
			label, st.Requests, st.OK, st.Shed, 100*st.ShedRate,
			1000*st.P50, 1000*st.P95, 1000*st.P99)
	}
	fmt.Fprintf(&sb, "stampede: %d concurrent cold clients -> %d evaluation(s), identical=%v\n",
		rep.Stampede.Clients, rep.Stampede.Evaluations, rep.Stampede.ByteIdentical)
	fmt.Fprintf(&sb, "contract: retry-after on every shed=%v, unexpected errors=%d, identity violations=%d\n",
		rep.RetryAfterAlways, rep.UnexpectedErrors, rep.IdentityViolations)
	return sb.String()
}
