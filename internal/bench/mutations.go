package bench

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rdfframes/internal/datagen"
	"rdfframes/internal/snapshot"
	"rdfframes/internal/sparql"
	"rdfframes/internal/store"
)

// The mutations workload measures the write path end to end: SPARQL UPDATE
// batches through the engine (WAL fsync included), tombstone accumulation
// and compaction, and crash recovery — a kill-9 simulated by discarding the
// mutated store and rebuilding it from the pre-mutation snapshot plus a WAL
// replay. The headline correctness number is ByteIdentical: every Figure-5
// query must return byte-identical SPARQL JSON on the recovered store and on
// the store that never crashed.

// Mutation workload shape: insertBatches batches of opsPerBatch triples are
// inserted, then deleted again (leaving one batch to a DELETE WHERE sweep),
// so the workload is net-zero and the recovered store must match the base
// dataset plus nothing.
const (
	mutationBatches     = 32
	mutationOpsPerBatch = 64
)

// mutationGraph is the graph the workload writes into (the largest of the
// three, so tombstone scans and compaction touch real data).
var mutationGraph = datagen.DBpediaURI

// MutationsReport holds the write-path numbers.
type MutationsReport struct {
	Batches     int `json:"batches"`
	OpsPerBatch int `json:"ops_per_batch"`
	// Inserted / Deleted are total triples changed across the workload.
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	// InsertSeconds / DeleteSeconds time the batched UPDATE requests through
	// the engine, WAL append + fsync included.
	InsertSeconds float64 `json:"insert_seconds"`
	DeleteSeconds float64 `json:"delete_seconds"`
	// InsertTriplesPerSec / DeleteTriplesPerSec are the derived throughputs.
	InsertTriplesPerSec float64 `json:"insert_triples_per_sec"`
	DeleteTriplesPerSec float64 `json:"delete_triples_per_sec"`
	// CompactSeconds times the forced compaction of the graphs left carrying
	// tombstones after the delete phase; CompactedGraphs counts them.
	CompactSeconds  float64 `json:"compact_seconds"`
	CompactedGraphs int     `json:"compacted_graphs"`
	// WALBytes is the log size after the full workload, before recovery.
	WALBytes int64 `json:"wal_bytes"`
	// RecoverSeconds times OpenWAL + Replay onto the freshly-reopened
	// snapshot (the crash-recovery path); ReplayBatches counts the committed
	// batches it applied.
	RecoverSeconds float64 `json:"recover_seconds"`
	ReplayBatches  int     `json:"replay_batches"`
	// ByteIdentical reports that every Figure-5 query answered byte-identical
	// SPARQL JSON on the recovered store and the uninterrupted one.
	ByteIdentical bool `json:"byte_identical"`
}

// MeasureMutations runs the write-path workload. walDir is where the log
// file lives ("" uses a temp directory).
func MeasureMutations(env *Env, walDir string) (*MutationsReport, error) {
	if walDir == "" {
		dir, err := os.MkdirTemp("", "rdfframes-mutations")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		walDir = dir
	}
	walPath := filepath.Join(walDir, "mutations.wal")

	// The pre-mutation snapshot is the durable base state the crash recovers
	// onto — exactly what -write-snapshot would have persisted.
	var snap bytes.Buffer
	if err := snapshot.Write(&snap, env.Store); err != nil {
		return nil, fmt.Errorf("mutations: snapshot base: %w", err)
	}
	liveStore, err := snapshot.Read(bytes.NewReader(snap.Bytes()))
	if err != nil {
		return nil, err
	}
	live := sparql.NewEngine(liveStore)
	live.Parallelism = env.Engine.Parallelism
	wal, rec, err := store.OpenWAL(walPath)
	if err != nil {
		return nil, err
	}
	if len(rec.Batches) > 0 || rec.Damage != nil {
		return nil, fmt.Errorf("mutations: WAL %s not fresh", walPath)
	}
	live.SetWAL(wal)

	rep := &MutationsReport{Batches: mutationBatches, OpsPerBatch: mutationOpsPerBatch}
	ctx := context.Background()

	// Insert phase: mutationBatches atomic UPDATE requests, one fsync each.
	start := time.Now()
	for b := 0; b < mutationBatches; b++ {
		res, err := live.Update(ctx, insertBatch(b), fmt.Sprintf("mut-ins-%d", b))
		if err != nil {
			return nil, fmt.Errorf("mutations: insert batch %d: %w", b, err)
		}
		rep.Inserted += res.Inserted
	}
	rep.InsertSeconds = time.Since(start).Seconds()

	// Delete phase: all but the last batch via DELETE DATA (tombstones
	// accumulate and auto-compaction fires when they cross the threshold),
	// the last via a DELETE WHERE sweep over the workload predicate.
	start = time.Now()
	for b := 0; b < mutationBatches-1; b++ {
		res, err := live.Update(ctx, deleteBatch(b), fmt.Sprintf("mut-del-%d", b))
		if err != nil {
			return nil, fmt.Errorf("mutations: delete batch %d: %w", b, err)
		}
		rep.Deleted += res.Deleted
	}
	sweep := `DELETE WHERE { GRAPH <` + mutationGraph + `> { ?s <http://bench/mut/p> ?o } }`
	res, err := live.Update(ctx, sweep, "mut-sweep")
	if err != nil {
		return nil, fmt.Errorf("mutations: DELETE WHERE sweep: %w", err)
	}
	rep.Deleted += res.Deleted
	rep.DeleteSeconds = time.Since(start).Seconds()
	if rep.InsertSeconds > 0 {
		rep.InsertTriplesPerSec = float64(rep.Inserted) / rep.InsertSeconds
	}
	if rep.DeleteSeconds > 0 {
		rep.DeleteTriplesPerSec = float64(rep.Deleted) / rep.DeleteSeconds
	}

	// Compaction: drop whatever tombstones the threshold left behind.
	start = time.Now()
	rep.CompactedGraphs = liveStore.CompactAll()
	rep.CompactSeconds = time.Since(start).Seconds()

	if size, err := wal.Size(); err == nil {
		rep.WALBytes = size
	}
	liveDigests, err := figure5Digests(env, live)
	if err != nil {
		return nil, err
	}
	wal.Close() // crash: the mutated in-memory store is lost

	// Recovery: reopen the snapshot, replay the committed WAL tail.
	recovered, err := snapshot.Read(bytes.NewReader(snap.Bytes()))
	if err != nil {
		return nil, err
	}
	start = time.Now()
	wal2, rec2, err := store.OpenWAL(walPath)
	if err != nil {
		return nil, fmt.Errorf("mutations: reopening WAL: %w", err)
	}
	defer wal2.Close()
	if rec2.Damage != nil {
		return nil, fmt.Errorf("mutations: WAL damaged after clean shutdown: %v", rec2.Damage)
	}
	if _, err := rec2.Replay(recovered); err != nil {
		return nil, fmt.Errorf("mutations: replay: %w", err)
	}
	rep.RecoverSeconds = time.Since(start).Seconds()
	rep.ReplayBatches = len(rec2.Batches)

	recEng := sparql.NewEngine(recovered)
	recEng.Parallelism = env.Engine.Parallelism
	recDigests, err := figure5Digests(env, recEng)
	if err != nil {
		return nil, err
	}
	rep.ByteIdentical = liveDigests == recDigests
	return rep, nil
}

// insertBatch builds the b-th INSERT DATA request: opsPerBatch fresh triples
// under the workload predicate (IRIs and literals, so the WAL term codec
// round-trips both shapes).
func insertBatch(b int) string {
	var sb strings.Builder
	sb.WriteString(`INSERT DATA { GRAPH <` + mutationGraph + `> {`)
	for i := 0; i < mutationOpsPerBatch; i++ {
		n := b*mutationOpsPerBatch + i
		if i%2 == 0 {
			fmt.Fprintf(&sb, " <http://bench/mut/s%d> <http://bench/mut/p> <http://bench/mut/o%d> .", n, n)
		} else {
			fmt.Fprintf(&sb, " <http://bench/mut/s%d> <http://bench/mut/p> \"value %d\" .", n, n)
		}
	}
	sb.WriteString(" } }")
	return sb.String()
}

// deleteBatch is the DELETE DATA mirror of insertBatch(b).
func deleteBatch(b int) string {
	s := insertBatch(b)
	return "DELETE DATA" + strings.TrimPrefix(s, "INSERT DATA")
}

// figure5Digests evaluates every Figure-5 expert query on eng and digests
// the concatenated SPARQL JSON bodies. env supplies only the query texts.
func figure5Digests(env *Env, eng *sparql.Engine) (string, error) {
	h := sha256.New()
	for _, task := range Synthetic() {
		res, err := eng.Query(task.Expert(env))
		if err != nil {
			return "", fmt.Errorf("mutations: %s: %w", task.ID, err)
		}
		body, err := res.MarshalJSON()
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %d ", task.ID, len(body))
		h.Write(body)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// FormatMutations renders the write-path numbers as text.
func FormatMutations(r *MutationsReport) string {
	var sb strings.Builder
	sb.WriteString("Mutations: SPARQL UPDATE, WAL durability, and crash recovery\n")
	fmt.Fprintf(&sb, "  batches              %d x %d ops\n", r.Batches, r.OpsPerBatch)
	fmt.Fprintf(&sb, "  insert               %d triples in %.4fs (%.0f triples/s, fsync per batch)\n",
		r.Inserted, r.InsertSeconds, r.InsertTriplesPerSec)
	fmt.Fprintf(&sb, "  delete               %d triples in %.4fs (%.0f triples/s)\n",
		r.Deleted, r.DeleteSeconds, r.DeleteTriplesPerSec)
	fmt.Fprintf(&sb, "  compact              %d graph(s) in %.4fs\n", r.CompactedGraphs, r.CompactSeconds)
	fmt.Fprintf(&sb, "  wal size             %d bytes\n", r.WALBytes)
	fmt.Fprintf(&sb, "  recover              %d batches replayed in %.4fs\n", r.ReplayBatches, r.RecoverSeconds)
	fmt.Fprintf(&sb, "  figure-5 after crash byte-identical=%v\n", r.ByteIdentical)
	return sb.String()
}
