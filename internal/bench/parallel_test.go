package bench

import (
	"bytes"
	"testing"
	"time"

	"rdfframes/internal/sparql"
)

// TestFigure5ParallelByteIdentical is the acceptance property for the
// morsel pool: for all 15 Figure-5 queries (the RDFFrames-generated
// SPARQL), evaluation at Parallelism 2, 4, and 8 produces SPARQL JSON
// byte-identical to Parallelism 1 — the serial engine.
func TestFigure5ParallelByteIdentical(t *testing.T) {
	env, err := NewEnv(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	serial := sparql.NewEngine(env.Store)
	serial.Parallelism = 1
	for _, task := range Synthetic() {
		query, err := task.Frame(env).ToSPARQL()
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		want, err := evalJSON(serial, query)
		if err != nil {
			t.Fatalf("%s: serial: %v", task.ID, err)
		}
		for _, workers := range []int{2, 4, 8} {
			par := sparql.NewEngine(env.Store)
			par.Parallelism = workers
			got, err := evalJSON(par, query)
			if err != nil {
				t.Fatalf("%s: parallelism %d: %v", task.ID, workers, err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("%s: parallelism %d result differs from serial (%d vs %d bytes)",
					task.ID, workers, len(want), len(got))
			}
		}
	}
}

// TestMeasureParallelSmoke runs the parallel figure end to end at small
// scale and checks the report is structurally sound — the same contract
// cmd/benchcheck enforces in CI.
func TestMeasureParallelSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke in -short mode")
	}
	env, err := NewEnv(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	rep, err := MeasureParallel(env, 4, 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 4 || len(rep.Queries) != len(Synthetic()) {
		t.Fatalf("report covers %d queries at %d workers", len(rep.Queries), rep.Workers)
	}
	for _, q := range rep.Queries {
		if !q.ByteIdentical {
			t.Fatalf("%s: parallel result not byte-identical", q.Task)
		}
		if q.SerialSeconds <= 0 || q.ParallelSeconds <= 0 {
			t.Fatalf("%s: empty timing", q.Task)
		}
	}
	if out := FormatParallel(rep); out == "" {
		t.Fatal("empty formatted report")
	}
}
