package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden EXPLAIN plans under testdata/explain")

// TestExplainGoldenFigure5 pins the optimized plan of every Figure-5 query:
// join order, filter placement, prune schedule, and estimated vs actual
// cardinalities at the small (test) scale. The datasets are seeded and the
// planner is deterministic, so any diff is a real plan change — rerun with
// -update and review the new plans when the change is intentional.
func TestExplainGoldenFigure5(t *testing.T) {
	env := sharedEnv(t)
	for _, task := range Synthetic() {
		t.Run(task.ID, func(t *testing.T) {
			query, err := task.Frame(env).ToSPARQL()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := env.Engine.Explain(query)
			if err != nil {
				t.Fatal(err)
			}
			got := rep.PlanText()
			path := filepath.Join("testdata", "explain", task.ID+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden plan (run `go test ./internal/bench -run ExplainGolden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan for %s changed:\n--- got ---\n%s--- want ---\n%s", task.ID, got, want)
			}
		})
	}
}
