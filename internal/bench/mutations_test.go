package bench

import "testing"

// TestMeasureMutations runs the full write-path workload at small scale:
// the report must show real insert/delete work, a full WAL replay on
// recovery, and byte-identical Figure-5 results on the recovered store.
func TestMeasureMutations(t *testing.T) {
	env, err := NewEnv(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	rep, err := MeasureMutations(env, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wantOps := mutationBatches * mutationOpsPerBatch
	if rep.Inserted != wantOps {
		t.Errorf("Inserted = %d, want %d", rep.Inserted, wantOps)
	}
	if rep.Deleted != wantOps {
		t.Errorf("Deleted = %d, want %d (workload is net-zero)", rep.Deleted, wantOps)
	}
	if rep.InsertSeconds <= 0 || rep.DeleteSeconds <= 0 || rep.RecoverSeconds <= 0 {
		t.Errorf("empty timing: %+v", rep)
	}
	// insert batches + delete batches + the DELETE WHERE sweep.
	if want := 2 * mutationBatches; rep.ReplayBatches != want {
		t.Errorf("ReplayBatches = %d, want %d", rep.ReplayBatches, want)
	}
	if rep.WALBytes == 0 {
		t.Error("WALBytes = 0, workload never hit the log")
	}
	if !rep.ByteIdentical {
		t.Error("figure-5 results after crash recovery are not byte-identical")
	}
	if out := FormatMutations(rep); out == "" {
		t.Error("FormatMutations returned nothing")
	}
}
