package core

import (
	"fmt"
	"strings"
)

// Translate renders a query model as SPARQL text (paper §4.3). Each model
// component maps directly to the corresponding SPARQL construct; inner
// models recurse as subqueries; when patterns span multiple graphs, GRAPH
// blocks scope each pattern subset to its graph.
func Translate(m *QueryModel) (string, error) {
	tr := &translator{multiGraph: len(m.allGraphs()) > 1}
	var sb strings.Builder
	if m.Prefixes != nil {
		for _, b := range m.Prefixes.Bindings() {
			fmt.Fprintf(&sb, "PREFIX %s: <%s>\n", b[0], b[1])
		}
	}
	if err := tr.renderQuery(&sb, m, 0, true); err != nil {
		return "", err
	}
	return sb.String(), nil
}

type translator struct {
	multiGraph bool
}

func (tr *translator) renderQuery(sb *strings.Builder, m *QueryModel, depth int, topLevel bool) error {
	ind := strings.Repeat("  ", depth)
	sb.WriteString(ind)
	sb.WriteString("SELECT ")
	if m.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if err := tr.renderSelectClause(sb, m); err != nil {
		return err
	}
	sb.WriteByte('\n')
	if topLevel {
		for _, g := range m.allGraphs() {
			fmt.Fprintf(sb, "%sFROM <%s>\n", ind, g)
		}
	}
	sb.WriteString(ind)
	sb.WriteString("WHERE {\n")
	if err := tr.renderBody(sb, m, depth+1); err != nil {
		return err
	}
	sb.WriteString(ind)
	sb.WriteString("}")
	if len(m.GroupByCols) > 0 {
		sb.WriteString("\n" + ind + "GROUP BY")
		for _, c := range m.GroupByCols {
			sb.WriteString(" ?" + c)
		}
	}
	for _, h := range m.Having {
		fmt.Fprintf(sb, "\n%sHAVING ( %s )", ind, tr.substituteAggs(h.Expr, m.Aggs))
	}
	if len(m.Order) > 0 {
		sb.WriteString("\n" + ind + "ORDER BY")
		for _, k := range m.Order {
			if k.Desc {
				sb.WriteString(" DESC(?" + k.Col + ")")
			} else {
				sb.WriteString(" ASC(?" + k.Col + ")")
			}
		}
	}
	if m.Limit >= 0 {
		fmt.Fprintf(sb, "\n%sLIMIT %d", ind, m.Limit)
	}
	if m.Offset > 0 {
		fmt.Fprintf(sb, "\n%sOFFSET %d", ind, m.Offset)
	}
	sb.WriteByte('\n')
	return nil
}

// renderSelectClause writes the projection: explicit columns (rendering
// aggregate result columns as (AGG(...) AS ?col)), a synthesized projection
// for grouped models, or *.
func (tr *translator) renderSelectClause(sb *strings.Builder, m *QueryModel) error {
	aggByName := map[string]AggSpec{}
	for _, a := range m.Aggs {
		aggByName[a.New] = a
	}
	vars := m.SelectVars
	if len(vars) == 0 {
		if m.IsGrouped() {
			vars = append(append([]string(nil), m.GroupByCols...), aggNames(m.Aggs)...)
		} else {
			sb.WriteString("*")
			return nil
		}
	}
	for i, v := range vars {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if a, ok := aggByName[v]; ok {
			fmt.Fprintf(sb, "(%s AS ?%s)", renderAgg(a), v)
		} else {
			sb.WriteString("?" + v)
		}
	}
	return nil
}

func renderAgg(a AggSpec) string {
	fn := strings.ToUpper(a.Fn)
	if a.Distinct {
		return fmt.Sprintf("%s(DISTINCT ?%s)", fn, a.Src)
	}
	return fmt.Sprintf("%s(?%s)", fn, a.Src)
}

// substituteAggs rewrites references to aggregate result columns inside a
// HAVING expression into the aggregate expressions themselves, since SPARQL
// HAVING cannot reference SELECT aliases (the paper's queries emit
// HAVING ( COUNT(DISTINCT ?movie) >= 50 )).
func (tr *translator) substituteAggs(expr string, aggs []AggSpec) string {
	for _, a := range aggs {
		expr = varRef(a.New).ReplaceAllString(expr, renderAgg(a))
	}
	return expr
}

func (tr *translator) renderBody(sb *strings.Builder, m *QueryModel, depth int) error {
	ind := strings.Repeat("  ", depth)

	// Triple patterns, grouped per graph when the query spans multiple
	// graphs.
	if len(m.Triples) > 0 {
		if tr.multiGraph {
			for _, g := range m.graphs() {
				fmt.Fprintf(sb, "%sGRAPH <%s> {\n", ind, g)
				for _, t := range m.Triples {
					if t.Graph == g {
						fmt.Fprintf(sb, "%s  %s .\n", ind, t)
					}
				}
				sb.WriteString(ind)
				sb.WriteString("}\n")
			}
			for _, t := range m.Triples {
				if t.Graph == "" {
					fmt.Fprintf(sb, "%s%s .\n", ind, t)
				}
			}
		} else {
			for _, t := range m.Triples {
				fmt.Fprintf(sb, "%s%s .\n", ind, t)
			}
		}
	}

	for _, sub := range m.SubQueries {
		sb.WriteString(ind)
		sb.WriteString("{\n")
		if err := tr.renderQuery(sb, sub, depth+1, false); err != nil {
			return err
		}
		sb.WriteString(ind)
		sb.WriteString("}\n")
	}

	for i, u := range m.Unions {
		if i > 0 {
			sb.WriteString(ind)
			sb.WriteString("UNION\n")
		}
		sb.WriteString(ind)
		sb.WriteString("{\n")
		if u.isPatternOnly() {
			if err := tr.renderBody(sb, u, depth+1); err != nil {
				return err
			}
		} else {
			if err := tr.renderQuery(sb, u, depth+1, false); err != nil {
				return err
			}
		}
		sb.WriteString(ind)
		sb.WriteString("}\n")
	}

	for _, f := range m.Filters {
		fmt.Fprintf(sb, "%sFILTER ( %s )\n", ind, f.Expr)
	}

	// OPTIONAL blocks render last: a left join applies to everything the
	// group has produced, so an optional expand recorded after a join (or
	// union) must not precede those patterns in the query text.
	for _, opt := range m.Optionals {
		sb.WriteString(ind)
		sb.WriteString("OPTIONAL {\n")
		if opt.isPatternOnly() && !opt.ForceSubquery {
			if err := tr.renderBody(sb, opt, depth+1); err != nil {
				return err
			}
		} else {
			if opt.IsGrouped() && len(opt.SelectVars) == 0 {
				opt.SelectVars = append(append([]string(nil), opt.GroupByCols...), aggNames(opt.Aggs)...)
			}
			if err := tr.renderQuery(sb, opt, depth+1, false); err != nil {
				return err
			}
		}
		sb.WriteString(ind)
		sb.WriteString("}\n")
	}
	return nil
}
