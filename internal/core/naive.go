package core

import (
	"fmt"
	"regexp"
	"strings"
)

// NaiveTranslate compiles an operator chain with the naive query generation
// strategy the paper evaluates against: every operator becomes its own
// subquery, and one outer query joins them all at a single level of
// nesting. Grouping wraps everything generated so far in a further nested
// query, as in the paper's Appendices C and D.
//
// One deliberate deviation from Appendix C: an optional expand is emitted
// as OPTIONAL { { SELECT ... } } in the outer query rather than as a plain
// subquery containing a dangling OPTIONAL, because the latter does not
// preserve left-outer-join semantics under composition; the paper verifies
// all alternatives return identical results, which requires this form.
func NaiveTranslate(c *Chain) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	n := &naive{}
	if err := n.run(c.Ops); err != nil {
		return "", err
	}
	var sb strings.Builder
	if c.Prefixes != nil {
		for _, b := range c.Prefixes.Bindings() {
			fmt.Fprintf(&sb, "PREFIX %s: <%s>\n", b[0], b[1])
		}
	}
	sb.WriteString(n.assemble(true))
	return sb.String(), nil
}

type naive struct {
	parts   []string          // rendered group elements of the outer query
	binder  map[string]string // column -> triple pattern text that bound it
	bindCol map[string][]string
	scope   map[string]bool // columns currently visible
	pending []Condition     // filters deferred until their column is visible
	graphs  []string
	proj    []string // final projection (empty = *)
	order   []SortKey
	limit   int
	offset  int
}

func (n *naive) init() {
	if n.binder == nil {
		n.binder = map[string]string{}
		n.bindCol = map[string][]string{}
		n.scope = map[string]bool{}
		n.limit = -1
	}
}

func (n *naive) addGraph(g string) {
	if g == "" {
		return
	}
	for _, have := range n.graphs {
		if have == g {
			return
		}
	}
	n.graphs = append(n.graphs, g)
}

func (n *naive) run(ops []Op) error {
	n.init()
	for _, op := range ops {
		switch o := op.(type) {
		case SeedOp:
			n.addGraph(o.GraphURI)
			pat := fmt.Sprintf("%s %s %s .", o.S, o.P, o.O)
			var cols []string
			for _, nd := range []PatternNode{o.S, o.P, o.O} {
				if nd.IsCol() {
					cols = append(cols, nd.Col)
					n.binder[nd.Col] = pat
				}
			}
			n.bindCol[pat] = cols
			for _, c := range cols {
				n.scope[c] = true
			}
			n.parts = append(n.parts, subquery(cols, pat))

		case ExpandOp:
			n.addGraph(o.GraphURI)
			var pat string
			if o.In {
				pat = fmt.Sprintf("?%s %s ?%s .", o.New, Constant(o.Pred), o.Src)
			} else {
				pat = fmt.Sprintf("?%s %s ?%s .", o.Src, Constant(o.Pred), o.New)
			}
			n.binder[o.New] = pat
			n.bindCol[pat] = []string{o.Src, o.New}
			n.scope[o.New] = true
			sq := subquery([]string{o.Src, o.New}, pat)
			if o.Optional {
				sq = "OPTIONAL {\n" + sq + "\n}"
			}
			n.parts = append(n.parts, sq)

		case FilterOp:
			for _, cond := range o.Conds {
				pat, bound := n.binder[cond.Col]
				switch {
				case bound && varsSubset(cond.Expr, n.bindCol[pat]):
					// Single-column condition: repeat the binding pattern
					// in its own filtering subquery (Appendix C style).
					body := pat + "\nFILTER ( " + cond.Expr + " )"
					n.parts = append(n.parts, subquery(n.bindCol[pat], body))
				case varsInScope(cond.Expr, n.scope):
					// Multi-column or subquery-produced condition: a bare
					// filter over the joined result.
					n.parts = append(n.parts, "FILTER ( "+cond.Expr+" )")
				default:
					// Column hidden by grouping; emit once a join brings
					// it back into scope.
					n.pending = append(n.pending, cond)
				}
			}

		case GroupByOp:
			// Consumed together with the following aggregations.

		case AggregationOp, AggregateOp:
			var agg AggSpec
			var groupCols []string
			if a, ok := op.(AggregationOp); ok {
				agg = a.Agg
				groupCols = n.lastGroupCols(ops, op)
			} else {
				agg = op.(AggregateOp).Agg
			}
			inner := strings.Join(n.parts, "\n")
			var sel strings.Builder
			for _, gc := range groupCols {
				sel.WriteString("?" + gc + " ")
			}
			fmt.Fprintf(&sel, "(%s AS ?%s)", renderAgg(agg), agg.New)
			var sq strings.Builder
			sq.WriteString("{\nSELECT " + sel.String() + "\nWHERE {\n" + inner + "\n}")
			if len(groupCols) > 0 {
				sq.WriteString("\nGROUP BY")
				for _, gc := range groupCols {
					sq.WriteString(" ?" + gc)
				}
			}
			sq.WriteString("\n}")
			n.parts = []string{sq.String()}
			// Columns bound inside the group subquery are no longer
			// directly filterable by pattern, and only the grouping and
			// aggregate columns remain in scope.
			n.binder = map[string]string{}
			n.bindCol = map[string][]string{}
			n.scope = map[string]bool{agg.New: true}
			for _, gc := range groupCols {
				n.scope[gc] = true
			}
			if _, ok := op.(AggregateOp); ok {
				n.proj = []string{agg.New}
			}

		case SelectColsOp:
			n.proj = append([]string(nil), o.Cols...)

		case SortOp:
			n.order = append(n.order, o.Keys...)

		case HeadOp:
			n.limit, n.offset = o.K, o.Offset

		case JoinOp:
			right := &naive{}
			if err := right.run(o.Other.Ops); err != nil {
				return err
			}
			for _, g := range right.graphs {
				n.addGraph(g)
			}
			rightBody := strings.Join(right.parts, "\n")
			if o.NewCol != "" {
				n.renameParts(o.Col, o.NewCol)
				rightBody = renameText(rightBody, o.OtherCol, o.NewCol)
			}
			switch o.Type {
			case InnerJoin:
				n.parts = append(n.parts, "{\nSELECT *\nWHERE {\n"+rightBody+"\n}\n}")
			case LeftOuterJoin:
				n.parts = append(n.parts, "OPTIONAL {\n{\nSELECT *\nWHERE {\n"+rightBody+"\n}\n}\n}")
			case RightOuterJoin:
				leftBody := strings.Join(n.parts, "\n")
				n.parts = []string{
					"{\nSELECT *\nWHERE {\n" + rightBody + "\n}\n}",
					"OPTIONAL {\n{\nSELECT *\nWHERE {\n" + leftBody + "\n}\n}\n}",
				}
			case FullOuterJoin:
				leftBody := strings.Join(n.parts, "\n")
				b1 := "{\nSELECT *\nWHERE {\n" + leftBody + "\nOPTIONAL {\n{\nSELECT *\nWHERE {\n" + rightBody + "\n}\n}\n}\n}\n}"
				b2 := "{\nSELECT *\nWHERE {\n" + rightBody + "\nOPTIONAL {\n{\nSELECT *\nWHERE {\n" + leftBody + "\n}\n}\n}\n}\n}"
				n.parts = []string{b1 + "\nUNION\n" + b2}
			}
			// The join may re-expose columns for later filters; merge the
			// right side's binders, scope, and deferred filters.
			for col, pat := range right.binder {
				if _, exists := n.binder[col]; !exists {
					n.binder[col] = pat
					n.bindCol[pat] = right.bindCol[pat]
				}
			}
			for col := range right.scope {
				n.scope[col] = true
			}
			n.pending = append(n.pending, right.pending...)
			var still []Condition
			for _, cond := range n.pending {
				if n.scope[cond.Col] {
					n.parts = append(n.parts, "FILTER ( "+cond.Expr+" )")
				} else {
					still = append(still, cond)
				}
			}
			n.pending = still

		default:
			return fmt.Errorf("core: naive translation: unknown operator %T", op)
		}
	}
	return nil
}

// lastGroupCols finds the grouping columns of the GroupByOp immediately
// preceding the given aggregation in the op list.
func (n *naive) lastGroupCols(ops []Op, agg Op) []string {
	for i, op := range ops {
		if op == agg {
			for j := i - 1; j >= 0; j-- {
				if g, ok := ops[j].(GroupByOp); ok {
					return g.Cols
				}
				if _, ok := ops[j].(AggregationOp); !ok {
					break
				}
			}
		}
	}
	return nil
}

func (n *naive) renameParts(old, new string) {
	for i := range n.parts {
		n.parts[i] = renameText(n.parts[i], old, new)
	}
	if hasString(n.proj, old) {
		for i, p := range n.proj {
			if p == old {
				n.proj[i] = new
			}
		}
	}
}

func renameText(s, old, new string) string {
	return varRef(old).ReplaceAllString(s, "?"+new)
}

var varRE = regexp.MustCompile(`\?([A-Za-z_][A-Za-z0-9_]*)`)

// varsSubset reports whether every ?variable in expr is among cols.
func varsSubset(expr string, cols []string) bool {
	for _, m := range varRE.FindAllStringSubmatch(expr, -1) {
		if !hasString(cols, m[1]) {
			return false
		}
	}
	return true
}

// varsInScope reports whether every ?variable in expr is a visible column.
func varsInScope(expr string, scope map[string]bool) bool {
	for _, m := range varRE.FindAllStringSubmatch(expr, -1) {
		if !scope[m[1]] {
			return false
		}
	}
	return true
}

func (n *naive) assemble(topLevel bool) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if len(n.proj) == 0 {
		sb.WriteString("*")
	} else {
		for i, c := range n.proj {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString("?" + c)
		}
	}
	sb.WriteByte('\n')
	if topLevel {
		for _, g := range n.graphs {
			fmt.Fprintf(&sb, "FROM <%s>\n", g)
		}
	}
	sb.WriteString("WHERE {\n")
	sb.WriteString(strings.Join(n.parts, "\n"))
	sb.WriteString("\n}")
	if len(n.order) > 0 {
		sb.WriteString("\nORDER BY")
		for _, k := range n.order {
			if k.Desc {
				sb.WriteString(" DESC(?" + k.Col + ")")
			} else {
				sb.WriteString(" ASC(?" + k.Col + ")")
			}
		}
	}
	if n.limit >= 0 {
		fmt.Fprintf(&sb, "\nLIMIT %d", n.limit)
	}
	if n.offset > 0 {
		fmt.Fprintf(&sb, "\nOFFSET %d", n.offset)
	}
	sb.WriteByte('\n')
	return sb.String()
}

func subquery(cols []string, body string) string {
	var sb strings.Builder
	sb.WriteString("{\nSELECT")
	if len(cols) == 0 {
		sb.WriteString(" *")
	}
	for _, c := range cols {
		sb.WriteString(" ?" + c)
	}
	sb.WriteString("\nWHERE {\n")
	sb.WriteString(body)
	sb.WriteString("\n}\n}")
	return sb.String()
}
