package core

import (
	"fmt"
)

// Generate replays an operator chain into a query model (paper §4.2). It is
// the Generator component of Figure 1: operators are consumed in FIFO order
// and each one edits the model, nesting a subquery only in the three cases
// where the semantics require it:
//
//  1. expand or filter applied to a grouped frame,
//  2. join involving a grouped frame,
//  3. full outer join (UNION of two OPTIONAL branches, both wrapped).
func Generate(c *Chain) (*QueryModel, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	g := &generator{chain: c}
	m, err := g.run(c.Ops)
	if err != nil {
		return nil, err
	}
	if len(g.pending) > 0 {
		return nil, fmt.Errorf("core: filter column %q is not in the frame", g.pending[0].Col)
	}
	return m, nil
}

// BuildSPARQL compiles an operator chain all the way to SPARQL text.
func BuildSPARQL(c *Chain) (string, error) {
	m, err := Generate(c)
	if err != nil {
		return "", err
	}
	return Translate(m)
}

type generator struct {
	chain *Chain
	// pending are filter conditions on columns not visible in the current
	// (grouped) frame; they attach once a later join or expand makes the
	// column visible again. This reproduces the paper's topic-modeling
	// query, where a post-grouping filter on a pre-grouping column lands
	// in the outer query after the join re-exposes it.
	pending []Condition
}

func (g *generator) run(ops []Op) (*QueryModel, error) {
	m := newModel(g.chain.Prefixes)
	// aggCols names the aggregate result columns of the current grouped
	// model; filters on them become HAVING conditions.
	aggCols := map[string]bool{}
	var pendingGroup []string
	// groupSrcVars snapshots the columns visible before grouping, so that
	// a second aggregation (e.g. count then sum) can still validate its
	// source column after the first aggregation restricted the frame.
	var groupSrcVars []string

	for _, op := range ops {
		switch o := op.(type) {
		case SeedOp:
			m.addTriple(GraphTriple{Graph: o.GraphURI, S: o.S, P: o.P, O: o.O})

		case ExpandOp:
			if !m.HasVar(o.Src) {
				return nil, fmt.Errorf("core: expand source column %q is not in the frame", o.Src)
			}
			if m.HasVar(o.New) {
				return nil, fmt.Errorf("core: expand target column %q already exists", o.New)
			}
			if m.IsGrouped() || m.HasModifiers() {
				m = m.wrap() // Case 1
				aggCols = map[string]bool{}
			}
			t := GraphTriple{Graph: o.GraphURI, S: Column(o.Src), P: Constant(o.Pred), O: Column(o.New)}
			if o.In {
				t.S, t.O = t.O, t.S
			}
			if o.Optional {
				opt := newModel(g.chain.Prefixes)
				opt.addTriple(t)
				m.Optionals = append(m.Optionals, opt)
				m.addVar(o.New)
			} else {
				m.addTriple(t)
			}
			g.attachPending(m)

		case FilterOp:
			for _, cond := range o.Conds {
				switch {
				case m.IsGrouped() && aggCols[cond.Col]:
					m.Having = append(m.Having, cond)
				case m.IsGrouped() && hasString(m.GroupByCols, cond.Col):
					// Case 1: the filter must see post-aggregation rows.
					m = m.wrap()
					aggCols = map[string]bool{}
					m.addFilter(cond)
				case m.HasVar(cond.Col):
					if m.HasModifiers() {
						m = m.wrap()
						aggCols = map[string]bool{}
					}
					m.addFilter(cond)
				case m.IsGrouped():
					// Column hidden by grouping: defer until a join or
					// expand re-exposes it.
					g.pending = append(g.pending, cond)
				default:
					return nil, fmt.Errorf("core: filter column %q is not in the frame", cond.Col)
				}
			}

		case GroupByOp:
			if m.IsGrouped() || m.HasModifiers() {
				m = m.wrap()
				aggCols = map[string]bool{}
			}
			for _, c := range o.Cols {
				if !m.HasVar(c) {
					return nil, fmt.Errorf("core: grouping column %q is not in the frame", c)
				}
			}
			pendingGroup = o.Cols
			groupSrcVars = m.Vars()

		case AggregationOp:
			if !hasString(groupSrcVars, o.Agg.Src) {
				return nil, fmt.Errorf("core: aggregation column %q is not in the frame", o.Agg.Src)
			}
			if len(m.GroupByCols) == 0 {
				m.GroupByCols = pendingGroup
			}
			m.Aggs = append(m.Aggs, o.Agg)
			m.Distinct = true // grouped subqueries project DISTINCT, as the paper's output does
			aggCols[o.Agg.New] = true
			// Grouping restricts the visible columns to the grouping
			// columns plus the aggregate results (paper §3.2).
			m.vars = append(append([]string(nil), m.GroupByCols...), aggNames(m.Aggs)...)

		case AggregateOp:
			if !m.HasVar(o.Agg.Src) {
				return nil, fmt.Errorf("core: aggregate column %q is not in the frame", o.Agg.Src)
			}
			if m.IsGrouped() || m.HasModifiers() {
				m = m.wrap()
				aggCols = map[string]bool{}
			}
			m.Aggs = append(m.Aggs, o.Agg)
			m.SelectVars = []string{o.Agg.New}
			m.vars = []string{o.Agg.New}

		case SelectColsOp:
			for _, c := range o.Cols {
				if !m.HasVar(c) {
					return nil, fmt.Errorf("core: selected column %q is not in the frame", c)
				}
			}
			m.SelectVars = append([]string(nil), o.Cols...)

		case SortOp:
			for _, k := range o.Keys {
				if !m.HasVar(k.Col) {
					return nil, fmt.Errorf("core: sort column %q is not in the frame", k.Col)
				}
			}
			m.Order = append(m.Order, o.Keys...)

		case HeadOp:
			m.Limit = o.K
			m.Offset = o.Offset

		case JoinOp:
			right, err := g.runJoinSide(o)
			if err != nil {
				return nil, err
			}
			if o.NewCol != "" {
				m.renameVar(o.Col, o.NewCol)
				right.renameVar(o.OtherCol, o.NewCol)
			}
			m = joinModels(m, right, o.Type, g.chain)
			aggCols = map[string]bool{}
			g.attachPending(m)

		default:
			return nil, fmt.Errorf("core: unknown operator %T", op)
		}
	}
	return m, nil
}

func (g *generator) runJoinSide(o JoinOp) (*QueryModel, error) {
	sub := &generator{chain: o.Other}
	right, err := sub.run(o.Other.Ops)
	if err != nil {
		return nil, err
	}
	// Filters deferred inside the joined frame become this generator's
	// responsibility: the join may re-expose their columns.
	g.pending = append(g.pending, sub.pending...)
	joinCol := o.OtherCol
	if joinCol == "" {
		joinCol = o.Col
	}
	if !right.HasVar(joinCol) {
		return nil, fmt.Errorf("core: join column %q is not in the right frame", joinCol)
	}
	return right, nil
}

// attachPending moves deferred filter conditions into the model for every
// column that has become visible.
func (g *generator) attachPending(m *QueryModel) {
	var still []Condition
	for _, c := range g.pending {
		if m.HasVar(c.Col) && !m.IsGrouped() {
			m.addFilter(c)
		} else {
			still = append(still, c)
		}
	}
	g.pending = still
}

// needsWrap reports whether a model must become a subquery when joined with
// another model (paper §4.2, Case 2).
func needsWrap(m *QueryModel) bool {
	return m.IsGrouped() || m.HasModifiers() || m.Distinct || len(m.SelectVars) > 0
}

// joinModels combines two query models per the join type.
func joinModels(left, right *QueryModel, jt JoinType, chain *Chain) *QueryModel {
	if jt == FullOuterJoin {
		// Case 3: (left OPTIONAL right) UNION (right OPTIONAL left), both
		// sides wrapped in nested queries.
		mk := func(a, b *QueryModel) *QueryModel {
			branch := newModel(chain.Prefixes)
			if a.IsGrouped() && len(a.SelectVars) == 0 {
				a.SelectVars = append(append([]string(nil), a.GroupByCols...), aggNames(a.Aggs)...)
			}
			branch.SubQueries = append(branch.SubQueries, a)
			b.ForceSubquery = true
			branch.Optionals = append(branch.Optionals, b)
			for _, v := range a.projectedVars() {
				branch.addVar(v)
			}
			for _, v := range b.projectedVars() {
				branch.addVar(v)
			}
			return branch
		}
		out := newModel(chain.Prefixes)
		out.Unions = append(out.Unions,
			mk(cloneModel(left), cloneModel(right)),
			mk(cloneModel(right), cloneModel(left)))
		for _, v := range left.projectedVars() {
			out.addVar(v)
		}
		for _, v := range right.projectedVars() {
			out.addVar(v)
		}
		return out
	}

	out := newModel(chain.Prefixes)
	mergeSide := func(m *QueryModel, optional bool) {
		switch {
		case optional && needsWrap(m):
			m.ForceSubquery = true
			out.Optionals = append(out.Optionals, m)
			for _, v := range m.projectedVars() {
				out.addVar(v)
			}
		case optional:
			out.Optionals = append(out.Optionals, m)
			for _, v := range m.Vars() {
				out.addVar(v)
			}
		case needsWrap(m):
			if m.IsGrouped() && len(m.SelectVars) == 0 {
				m.SelectVars = append(append([]string(nil), m.GroupByCols...), aggNames(m.Aggs)...)
			}
			out.SubQueries = append(out.SubQueries, m)
			for _, v := range m.projectedVars() {
				out.addVar(v)
			}
		default:
			out.mergeInto(m)
		}
	}
	switch jt {
	case LeftOuterJoin:
		mergeSide(left, false)
		mergeSide(right, true)
	case RightOuterJoin:
		mergeSide(right, false)
		mergeSide(left, true)
	default: // InnerJoin
		mergeSide(left, false)
		mergeSide(right, false)
	}
	return out
}

// cloneModel deep-copies a model so the two branches of a full outer join
// can be rendered (and renamed) independently.
func cloneModel(m *QueryModel) *QueryModel {
	if m == nil {
		return nil
	}
	c := *m
	c.SelectVars = append([]string(nil), m.SelectVars...)
	c.Triples = append([]GraphTriple(nil), m.Triples...)
	c.Filters = append([]Condition(nil), m.Filters...)
	c.GroupByCols = append([]string(nil), m.GroupByCols...)
	c.Aggs = append([]AggSpec(nil), m.Aggs...)
	c.Having = append([]Condition(nil), m.Having...)
	c.Order = append([]SortKey(nil), m.Order...)
	c.vars = append([]string(nil), m.vars...)
	c.Optionals = nil
	for _, o := range m.Optionals {
		c.Optionals = append(c.Optionals, cloneModel(o))
	}
	c.SubQueries = nil
	for _, s := range m.SubQueries {
		c.SubQueries = append(c.SubQueries, cloneModel(s))
	}
	c.Unions = nil
	for _, u := range m.Unions {
		c.Unions = append(c.Unions, cloneModel(u))
	}
	return &c
}

func hasString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
