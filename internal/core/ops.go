// Package core implements the paper's primary contribution: the compilation
// of a recorded sequence of RDFFrames operators into a single optimized
// SPARQL query. It contains the operator records (the Recorder's queue
// entries), the query model intermediate representation (paper §4.1, after
// the Query Graph Model), the generator that replays operators into a query
// model handling the three cases that require nested subqueries (§4.2), the
// translator from query models to SPARQL text (§4.3), and the naive
// one-subquery-per-operator translator used as the evaluation baseline.
package core

import (
	"fmt"
	"regexp"

	"rdfframes/internal/rdf"
)

// PatternNode is a slot of a triple pattern: a column (SPARQL variable) or
// a constant term.
type PatternNode struct {
	Col  string // non-empty for a variable
	Term rdf.Term
}

// Column returns a variable pattern node.
func Column(name string) PatternNode { return PatternNode{Col: name} }

// Constant returns a constant-term pattern node.
func Constant(t rdf.Term) PatternNode { return PatternNode{Term: t} }

// IsCol reports whether the node is a column.
func (n PatternNode) IsCol() bool { return n.Col != "" }

// String renders the node in SPARQL syntax.
func (n PatternNode) String() string {
	if n.IsCol() {
		return "?" + n.Col
	}
	return n.Term.String()
}

var colNameRE = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

// ValidColumn reports whether name is usable as a SPARQL variable name.
func ValidColumn(name string) bool { return colNameRE.MatchString(name) }

// JoinType is the join flavour of the paper's join operator.
type JoinType int

// Join types.
const (
	InnerJoin JoinType = iota
	LeftOuterJoin
	RightOuterJoin
	FullOuterJoin
)

func (jt JoinType) String() string {
	switch jt {
	case InnerJoin:
		return "inner"
	case LeftOuterJoin:
		return "left_outer"
	case RightOuterJoin:
		return "right_outer"
	case FullOuterJoin:
		return "full_outer"
	}
	return "unknown"
}

// Condition is one filter condition: a rendered SPARQL boolean expression
// and the column it constrains (which decides FILTER vs HAVING placement).
type Condition struct {
	Col  string
	Expr string
}

// AggSpec describes one aggregation.
type AggSpec struct {
	Fn       string // count, sum, avg, min, max, sample
	Src      string // aggregated column
	New      string // result column
	Distinct bool
}

// SortKey is one sort criterion.
type SortKey struct {
	Col  string
	Desc bool
}

// Op is one recorded RDFFrames operator (an entry in the Recorder's FIFO
// queue, paper Figure 1).
type Op interface{ opName() string }

// SeedOp initializes a frame from a triple pattern on a graph (the paper's
// seed operator; feature_domain_range and entities are its variants).
type SeedOp struct {
	GraphURI string
	S, P, O  PatternNode
}

// ExpandOp navigates from Src over Pred to New (the paper's expand).
type ExpandOp struct {
	GraphURI string // graph to navigate in (usually the seed graph)
	Src      string
	Pred     rdf.Term
	New      string
	In       bool // navigate incoming edges (New is the subject)
	Optional bool // left-outer-join semantics, allows nulls in New
}

// FilterOp filters rows by the conjunction of conditions.
type FilterOp struct {
	Conds []Condition
}

// GroupByOp starts grouping by the given columns; it must be followed by at
// least one AggregationOp.
type GroupByOp struct {
	Cols []string
}

// AggregationOp aggregates within the groups opened by the last GroupByOp.
type AggregationOp struct {
	Agg AggSpec
}

// AggregateOp aggregates the whole frame into a single value (the paper's
// aggregate operator). No operators may follow it.
type AggregateOp struct {
	Agg AggSpec
}

// SelectColsOp projects the frame onto Cols.
type SelectColsOp struct {
	Cols []string
}

// JoinOp joins the frame with another operator chain.
type JoinOp struct {
	Other    *Chain
	Col      string // join column in this frame
	OtherCol string // join column in the other frame
	Type     JoinType
	NewCol   string // name of the joined column in the result
}

// SortOp sorts by the given keys.
type SortOp struct {
	Keys []SortKey
}

// HeadOp keeps K rows starting at Offset. No operators may follow it.
type HeadOp struct {
	K, Offset int
}

func (SeedOp) opName() string        { return "seed" }
func (ExpandOp) opName() string      { return "expand" }
func (FilterOp) opName() string      { return "filter" }
func (GroupByOp) opName() string     { return "group_by" }
func (AggregationOp) opName() string { return "aggregation" }
func (AggregateOp) opName() string   { return "aggregate" }
func (SelectColsOp) opName() string  { return "select_cols" }
func (JoinOp) opName() string        { return "join" }
func (SortOp) opName() string        { return "sort" }
func (HeadOp) opName() string        { return "head" }

// Chain is the recorded operator sequence describing one RDFFrame, plus the
// prefix bindings needed to render terms compactly.
type Chain struct {
	Prefixes *rdf.PrefixMap
	Ops      []Op
}

// Validate checks structural rules the API promises: the chain starts with
// a seed, group_by is followed by an aggregation, and nothing follows a
// whole-frame aggregate or head.
func (c *Chain) Validate() error {
	if len(c.Ops) == 0 {
		return fmt.Errorf("core: empty operator chain")
	}
	if _, ok := c.Ops[0].(SeedOp); !ok {
		return fmt.Errorf("core: chain must start with a seed operator, got %s", c.Ops[0].opName())
	}
	for i, op := range c.Ops {
		switch o := op.(type) {
		case SeedOp:
			if i != 0 {
				return fmt.Errorf("core: seed allowed only as the first operator")
			}
		case GroupByOp:
			if i+1 >= len(c.Ops) {
				return fmt.Errorf("core: group_by must be followed by an aggregation")
			}
			if _, ok := c.Ops[i+1].(AggregationOp); !ok {
				return fmt.Errorf("core: group_by must be followed by an aggregation, got %s", c.Ops[i+1].opName())
			}
		case AggregationOp:
			if i == 0 {
				return fmt.Errorf("core: aggregation requires a preceding group_by")
			}
			switch c.Ops[i-1].(type) {
			case GroupByOp, AggregationOp:
			default:
				return fmt.Errorf("core: aggregation requires a preceding group_by")
			}
		case AggregateOp, HeadOp:
			if i != len(c.Ops)-1 {
				return fmt.Errorf("core: no operators may follow %s", op.opName())
			}
		case JoinOp:
			if o.Other == nil {
				return fmt.Errorf("core: join requires another frame")
			}
			if err := o.Other.Validate(); err != nil {
				return fmt.Errorf("core: join right side: %w", err)
			}
		}
	}
	return nil
}
