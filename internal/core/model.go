package core

import (
	"regexp"
	"strings"
	"sync"

	"rdfframes/internal/rdf"
)

// varRefRE caches the compiled \?name\b patterns used to rewrite variable
// references inside rendered expressions; query generation runs on every
// Execute, so recompilation is measurable on sub-millisecond queries.
var varRefRE sync.Map // string -> *regexp.Regexp

func varRef(name string) *regexp.Regexp {
	if re, ok := varRefRE.Load(name); ok {
		return re.(*regexp.Regexp)
	}
	re := regexp.MustCompile(`\?` + regexp.QuoteMeta(name) + `\b`)
	varRefRE.Store(name, re)
	return re
}

// GraphTriple is a triple pattern tagged with the graph it matches in.
type GraphTriple struct {
	Graph   string
	S, P, O PatternNode
}

func (t GraphTriple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// QueryModel is the intermediate representation between an operator chain
// and a SPARQL query (paper §4.1, Figure 2). A model either holds graph
// patterns directly or is a union of sub-models (Unions non-empty).
type QueryModel struct {
	Prefixes *rdf.PrefixMap

	// Projection. Empty SelectVars means SELECT *.
	SelectVars []string
	Distinct   bool

	// Graph matching patterns.
	Triples    []GraphTriple
	Filters    []Condition
	Optionals  []*QueryModel // rendered as OPTIONAL blocks
	SubQueries []*QueryModel // rendered as nested SELECTs
	Unions     []*QueryModel // rendered as { m1 } UNION { m2 } ...

	// Aggregation constructs.
	GroupByCols []string
	Aggs        []AggSpec
	Having      []Condition

	// Query modifiers.
	Order  []SortKey
	Limit  int // -1 when absent
	Offset int

	// ForceSubquery makes the translator render this model as a nested
	// SELECT even where inline patterns would be legal (the paper wraps
	// both sides of a full outer join).
	ForceSubquery bool

	// vars tracks visible columns in first-use order.
	vars []string
}

// newModel returns an empty model with no limit.
func newModel(prefixes *rdf.PrefixMap) *QueryModel {
	return &QueryModel{Prefixes: prefixes, Limit: -1}
}

// IsGrouped reports whether the model computes grouping/aggregation, which
// drives the paper's three nesting cases.
func (m *QueryModel) IsGrouped() bool {
	return len(m.GroupByCols) > 0 || len(m.Aggs) > 0
}

// HasModifiers reports whether solution modifiers are set; pattern-adding
// operators arriving after modifiers force a nesting step.
func (m *QueryModel) HasModifiers() bool {
	return len(m.Order) > 0 || m.Limit >= 0 || m.Offset > 0
}

// Vars returns the visible columns in first-use order.
func (m *QueryModel) Vars() []string { return append([]string(nil), m.vars...) }

// HasVar reports whether the column is visible in the model.
func (m *QueryModel) HasVar(name string) bool {
	for _, v := range m.vars {
		if v == name {
			return true
		}
	}
	return false
}

func (m *QueryModel) addVar(name string) {
	if name == "" || m.HasVar(name) {
		return
	}
	m.vars = append(m.vars, name)
}

func (m *QueryModel) addTriple(t GraphTriple) {
	for _, have := range m.Triples {
		if have == t {
			return // merging branched frames must not duplicate patterns
		}
	}
	m.Triples = append(m.Triples, t)
	for _, n := range []PatternNode{t.S, t.P, t.O} {
		if n.IsCol() {
			m.addVar(n.Col)
		}
	}
}

func (m *QueryModel) addFilter(c Condition) {
	for _, have := range m.Filters {
		if have == c {
			return
		}
	}
	m.Filters = append(m.Filters, c)
}

// graphs returns the distinct graph URIs referenced by the model's own
// triples (not descending into subqueries), in first-use order.
func (m *QueryModel) graphs() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range m.Triples {
		if t.Graph != "" && !seen[t.Graph] {
			seen[t.Graph] = true
			out = append(out, t.Graph)
		}
	}
	return out
}

// allGraphs returns every graph URI referenced anywhere in the model tree.
func (m *QueryModel) allGraphs() []string {
	var out []string
	seen := map[string]bool{}
	var walk func(m *QueryModel)
	walk = func(m *QueryModel) {
		if m == nil {
			return
		}
		for _, t := range m.Triples {
			if t.Graph != "" && !seen[t.Graph] {
				seen[t.Graph] = true
				out = append(out, t.Graph)
			}
		}
		for _, o := range m.Optionals {
			walk(o)
		}
		for _, s := range m.SubQueries {
			walk(s)
		}
		for _, u := range m.Unions {
			walk(u)
		}
	}
	walk(m)
	return out
}

// projectedVars returns the columns the model exposes to an enclosing
// query: the explicit projection, or every visible column for SELECT *.
func (m *QueryModel) projectedVars() []string {
	if len(m.SelectVars) > 0 {
		return append([]string(nil), m.SelectVars...)
	}
	return m.Vars()
}

// wrap converts m into the single subquery of a fresh outer model (the
// nesting step shared by all three cases of paper §4.2). The grouped inner
// model projects its grouping and aggregation columns explicitly.
func (m *QueryModel) wrap() *QueryModel {
	if m.IsGrouped() && len(m.SelectVars) == 0 {
		m.SelectVars = append(append([]string(nil), m.GroupByCols...), aggNames(m.Aggs)...)
	}
	outer := newModel(m.Prefixes)
	outer.SubQueries = []*QueryModel{m}
	for _, v := range m.projectedVars() {
		outer.addVar(v)
	}
	return outer
}

func aggNames(aggs []AggSpec) []string {
	out := make([]string, len(aggs))
	for i, a := range aggs {
		out[i] = a.New
	}
	return out
}

// renameVar renames a column consistently through the whole model tree
// (triples, filters, projections, grouping, aggregation, ordering). SPARQL
// variable scope spans subqueries, so the rename descends into them.
func (m *QueryModel) renameVar(old, new string) {
	if m == nil || old == new {
		return
	}
	renameNode := func(n *PatternNode) {
		if n.Col == old {
			n.Col = new
		}
	}
	for i := range m.Triples {
		renameNode(&m.Triples[i].S)
		renameNode(&m.Triples[i].P)
		renameNode(&m.Triples[i].O)
	}
	re := varRef(old)
	for i := range m.Filters {
		if m.Filters[i].Col == old {
			m.Filters[i].Col = new
		}
		m.Filters[i].Expr = re.ReplaceAllString(m.Filters[i].Expr, "?"+new)
	}
	for i := range m.Having {
		if m.Having[i].Col == old {
			m.Having[i].Col = new
		}
		m.Having[i].Expr = re.ReplaceAllString(m.Having[i].Expr, "?"+new)
	}
	renameIn := func(ss []string) {
		for i, s := range ss {
			if s == old {
				ss[i] = new
			}
		}
	}
	renameIn(m.SelectVars)
	renameIn(m.GroupByCols)
	renameIn(m.vars)
	for i := range m.Aggs {
		if m.Aggs[i].Src == old {
			m.Aggs[i].Src = new
		}
		if m.Aggs[i].New == old {
			m.Aggs[i].New = new
		}
	}
	for i := range m.Order {
		if m.Order[i].Col == old {
			m.Order[i].Col = new
		}
	}
	for _, o := range m.Optionals {
		o.renameVar(old, new)
	}
	for _, s := range m.SubQueries {
		s.renameVar(old, new)
	}
	for _, u := range m.Unions {
		u.renameVar(old, new)
	}
}

// isPatternOnly reports whether the model can be rendered inline as a group
// of patterns (no projection, grouping, or modifiers), so an OPTIONAL block
// need not wrap it in a nested SELECT.
func (m *QueryModel) isPatternOnly() bool {
	return !m.IsGrouped() && !m.HasModifiers() && !m.Distinct &&
		len(m.SelectVars) == 0 && len(m.Unions) == 0
}

// mergeInto inlines the graph patterns of src into dst (the non-nesting
// join path of paper §4.2: both frames non-grouped). Duplicate triples and
// filters introduced by branching from a cached prefix collapse.
func (dst *QueryModel) mergeInto(src *QueryModel) {
	for _, t := range src.Triples {
		dst.addTriple(t)
	}
	for _, f := range src.Filters {
		dst.addFilter(f)
	}
	dst.Optionals = append(dst.Optionals, src.Optionals...)
	dst.SubQueries = append(dst.SubQueries, src.SubQueries...)
	dst.Unions = append(dst.Unions, src.Unions...)
	for _, v := range src.vars {
		dst.addVar(v)
	}
	dst.mergeModifiers(src)
}

// mergeModifiers combines solution modifiers per the paper: the union of
// selected variables, the maximum of limits, the minimum of offsets.
func (dst *QueryModel) mergeModifiers(src *QueryModel) {
	if len(dst.SelectVars) > 0 || len(src.SelectVars) > 0 {
		merged := append([]string(nil), dst.SelectVars...)
		have := map[string]bool{}
		for _, v := range merged {
			have[v] = true
		}
		for _, v := range src.SelectVars {
			if !have[v] {
				merged = append(merged, v)
			}
		}
		dst.SelectVars = merged
	}
	if src.Limit >= 0 && (dst.Limit < 0 || src.Limit > dst.Limit) {
		dst.Limit = src.Limit
	}
	if src.Offset > 0 && (dst.Offset == 0 || src.Offset < dst.Offset) {
		dst.Offset = src.Offset
	} else if dst.Offset > 0 && src.Offset > 0 && src.Offset < dst.Offset {
		dst.Offset = src.Offset
	}
	dst.Order = append(dst.Order, src.Order...)
}

// key renders a canonical string for structural deduplication in tests.
func (m *QueryModel) key() string {
	var sb strings.Builder
	for _, t := range m.Triples {
		sb.WriteString(t.Graph)
		sb.WriteByte(' ')
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	for _, f := range m.Filters {
		sb.WriteString(f.Expr)
		sb.WriteByte('\n')
	}
	return sb.String()
}
