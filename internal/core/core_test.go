package core

import (
	"strings"
	"testing"

	"rdfframes/internal/rdf"
)

const testGraph = "http://test.org/g"

func testChain(ops ...Op) *Chain {
	return &Chain{Prefixes: rdf.CommonPrefixes(), Ops: ops}
}

func seed(s, p, o string) SeedOp {
	node := func(v string) PatternNode {
		if strings.Contains(v, ":") {
			return Constant(rdf.NewIRI(v))
		}
		return Column(v)
	}
	return SeedOp{GraphURI: testGraph, S: node(s), P: node(p), O: node(o)}
}

func expand(src, pred, dst string) ExpandOp {
	return ExpandOp{GraphURI: testGraph, Src: src, Pred: rdf.NewIRI(pred), New: dst}
}

func mustSPARQL(t *testing.T, c *Chain) string {
	t.Helper()
	q, err := BuildSPARQL(c)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestTable1Mappings checks each row of the paper's Table 1: the SPARQL
// pattern each operator maps to.
func TestTable1Mappings(t *testing.T) {
	base := seed("movie", "http://p/starring", "actor")
	cases := []struct {
		name string
		ops  []Op
		want []string
	}{
		{"seed", []Op{base},
			[]string{"?movie <http://p/starring> ?actor ."}},
		{"expand_out", []Op{base, expand("actor", "http://p/born", "place")},
			[]string{"?actor <http://p/born> ?place ."}},
		{"expand_in", []Op{base, ExpandOp{GraphURI: testGraph, Src: "actor", Pred: rdf.NewIRI("http://p/knows"), New: "fan", In: true}},
			[]string{"?fan <http://p/knows> ?actor ."}},
		{"expand_optional", []Op{base, ExpandOp{GraphURI: testGraph, Src: "actor", Pred: rdf.NewIRI("http://p/award"), New: "award", Optional: true}},
			[]string{"OPTIONAL {", "?actor <http://p/award> ?award ."}},
		{"filter", []Op{base, FilterOp{Conds: []Condition{{Col: "actor", Expr: "isIRI(?actor)"}}}},
			[]string{"FILTER ( isIRI(?actor) )"}},
		{"select_cols", []Op{base, SelectColsOp{Cols: []string{"actor"}}},
			[]string{"SELECT ?actor"}},
		{"group_agg", []Op{base, GroupByOp{Cols: []string{"actor"}}, AggregationOp{Agg: AggSpec{Fn: "count", Src: "movie", New: "n"}}},
			[]string{"GROUP BY ?actor", "(COUNT(?movie) AS ?n)"}},
		{"aggregate", []Op{base, AggregateOp{Agg: AggSpec{Fn: "count", Src: "movie", New: "n", Distinct: true}}},
			[]string{"SELECT (COUNT(DISTINCT ?movie) AS ?n)", "?movie <http://p/starring> ?actor ."}},
		{"sort_head", []Op{base, SortOp{Keys: []SortKey{{Col: "actor", Desc: true}}}, HeadOp{K: 5, Offset: 2}},
			[]string{"ORDER BY DESC(?actor)", "LIMIT 5", "OFFSET 2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := mustSPARQL(t, testChain(tc.ops...))
			for _, want := range tc.want {
				if !strings.Contains(q, want) {
					t.Errorf("missing %q in:\n%s", want, q)
				}
			}
		})
	}
}

// The aggregate row of Table 1 emits SELECT DISTINCT because whole-frame
// aggregates reduce to a single row; the grouped case keeps DISTINCT too.
// Verify the three nesting cases of §4.2.

func TestCase1ExpandAfterGroupingNests(t *testing.T) {
	q := mustSPARQL(t, testChain(
		seed("movie", "http://p/starring", "actor"),
		GroupByOp{Cols: []string{"actor"}},
		AggregationOp{Agg: AggSpec{Fn: "count", Src: "movie", New: "n"}},
		expand("actor", "http://p/born", "place"),
	))
	if strings.Count(q, "SELECT") != 2 {
		t.Fatalf("expected nested subquery:\n%s", q)
	}
	inner := q[strings.Index(q, "{"):]
	if !strings.Contains(inner, "GROUP BY ?actor") {
		t.Fatalf("grouping must be inside the subquery:\n%s", q)
	}
	// The expand pattern is in the outer query, after the subquery.
	if !strings.Contains(q, "?actor <http://p/born> ?place .") {
		t.Fatalf("expand pattern missing:\n%s", q)
	}
}

func TestCase1FilterOnGroupingColumnNests(t *testing.T) {
	q := mustSPARQL(t, testChain(
		seed("movie", "http://p/starring", "actor"),
		GroupByOp{Cols: []string{"actor"}},
		AggregationOp{Agg: AggSpec{Fn: "count", Src: "movie", New: "n"}},
		FilterOp{Conds: []Condition{{Col: "actor", Expr: "isIRI(?actor)"}}},
	))
	if strings.Count(q, "SELECT") != 2 {
		t.Fatalf("expected nested subquery:\n%s", q)
	}
}

func TestFilterOnAggregateColumnBecomesHaving(t *testing.T) {
	q := mustSPARQL(t, testChain(
		seed("movie", "http://p/starring", "actor"),
		GroupByOp{Cols: []string{"actor"}},
		AggregationOp{Agg: AggSpec{Fn: "count", Src: "movie", New: "n", Distinct: true}},
		FilterOp{Conds: []Condition{{Col: "n", Expr: "?n >= 50"}}},
	))
	if !strings.Contains(q, "HAVING ( COUNT(DISTINCT ?movie) >= 50 )") {
		t.Fatalf("HAVING with substituted aggregate missing:\n%s", q)
	}
	if strings.Count(q, "SELECT") != 1 {
		t.Fatalf("HAVING must not introduce nesting:\n%s", q)
	}
}

func TestCase2JoinWithGroupedFrameNests(t *testing.T) {
	grouped := testChain(
		seed("movie", "http://p/starring", "actor"),
		GroupByOp{Cols: []string{"actor"}},
		AggregationOp{Agg: AggSpec{Fn: "count", Src: "movie", New: "n"}},
	)
	q := mustSPARQL(t, testChain(
		seed("actor", "http://p/award", "award"),
		JoinOp{Other: grouped, Col: "actor", OtherCol: "actor", Type: InnerJoin, NewCol: "actor"},
	))
	if strings.Count(q, "SELECT") != 2 {
		t.Fatalf("join with grouped frame must nest exactly once:\n%s", q)
	}
	if !strings.Contains(q, "?actor <http://p/award> ?award .") {
		t.Fatalf("outer pattern missing:\n%s", q)
	}
}

func TestCase2BothSidesGroupedTwoSubqueries(t *testing.T) {
	mk := func(pred string) *Chain {
		return testChain(
			seed("x", pred, "y"),
			GroupByOp{Cols: []string{"x"}},
			AggregationOp{Agg: AggSpec{Fn: "count", Src: "y", New: "n" + pred[len(pred)-1:]}},
		)
	}
	left := mk("http://p/a")
	right := mk("http://p/b")
	q := mustSPARQL(t, &Chain{
		Prefixes: rdf.CommonPrefixes(),
		Ops: append(left.Ops,
			JoinOp{Other: right, Col: "x", OtherCol: "x", Type: InnerJoin, NewCol: "x"}),
	})
	if strings.Count(q, "GROUP BY") != 2 {
		t.Fatalf("want two grouped subqueries:\n%s", q)
	}
	if strings.Count(q, "SELECT") != 3 {
		t.Fatalf("want outer + two subqueries:\n%s", q)
	}
}

func TestCase3FullOuterJoinIsUnionOfOptionals(t *testing.T) {
	right := testChain(seed("actor", "http://p/b", "z"))
	q := mustSPARQL(t, testChain(
		seed("actor", "http://p/a", "y"),
		JoinOp{Other: right, Col: "actor", OtherCol: "actor", Type: FullOuterJoin, NewCol: "actor"},
	))
	if strings.Count(q, "UNION") != 1 {
		t.Fatalf("full outer join must union two branches:\n%s", q)
	}
	if strings.Count(q, "OPTIONAL") != 2 {
		t.Fatalf("each branch needs one OPTIONAL:\n%s", q)
	}
}

func TestInnerJoinOfPatternFramesMergesWithoutNesting(t *testing.T) {
	right := testChain(seed("actor", "http://p/b", "z"))
	q := mustSPARQL(t, testChain(
		seed("actor", "http://p/a", "y"),
		JoinOp{Other: right, Col: "actor", OtherCol: "actor", Type: InnerJoin, NewCol: "actor"},
	))
	if strings.Count(q, "SELECT") != 1 {
		t.Fatalf("pattern-only join must not nest:\n%s", q)
	}
	for _, want := range []string{"?actor <http://p/a> ?y .", "?actor <http://p/b> ?z ."} {
		if !strings.Contains(q, want) {
			t.Fatalf("missing %q:\n%s", want, q)
		}
	}
}

func TestLeftOuterJoinWrapsRightInOptional(t *testing.T) {
	right := testChain(seed("actor", "http://p/b", "z"))
	q := mustSPARQL(t, testChain(
		seed("actor", "http://p/a", "y"),
		JoinOp{Other: right, Col: "actor", OtherCol: "actor", Type: LeftOuterJoin, NewCol: "actor"},
	))
	optIdx := strings.Index(q, "OPTIONAL")
	if optIdx < 0 || !strings.Contains(q[optIdx:], "http://p/b") {
		t.Fatalf("right side must be inside OPTIONAL:\n%s", q)
	}
	if strings.Contains(q[optIdx:], "http://p/a") {
		t.Fatalf("left side leaked into OPTIONAL:\n%s", q)
	}
}

func TestJoinRenamesColumns(t *testing.T) {
	right := testChain(seed("star", "http://p/b", "z"))
	q := mustSPARQL(t, testChain(
		seed("actor", "http://p/a", "y"),
		JoinOp{Other: right, Col: "actor", OtherCol: "star", Type: InnerJoin, NewCol: "person"},
	))
	if strings.Contains(q, "?actor") || strings.Contains(q, "?star") {
		t.Fatalf("join columns not renamed:\n%s", q)
	}
	if strings.Count(q, "?person") < 2 {
		t.Fatalf("renamed column must appear in both patterns:\n%s", q)
	}
}

func TestMergeDeduplicatesBranchedPatterns(t *testing.T) {
	// Two branches from the same seed joined back: the shared pattern
	// appears once.
	shared := seed("movie", "http://p/starring", "actor")
	left := testChain(shared, expand("actor", "http://p/born", "place"))
	right := testChain(shared, expand("movie", "http://p/title", "title"))
	q := mustSPARQL(t, &Chain{
		Prefixes: rdf.CommonPrefixes(),
		Ops: append(left.Ops,
			JoinOp{Other: right, Col: "actor", OtherCol: "actor", Type: InnerJoin, NewCol: "actor"}),
	})
	if strings.Count(q, "?movie <http://p/starring> ?actor .") != 1 {
		t.Fatalf("shared pattern duplicated:\n%s", q)
	}
}

func TestChainValidation(t *testing.T) {
	bad := []*Chain{
		testChain(),
		testChain(expand("a", "http://p/x", "b")),
		testChain(seed("a", "http://p/x", "b"), GroupByOp{Cols: []string{"a"}}),
		testChain(seed("a", "http://p/x", "b"), AggregationOp{Agg: AggSpec{Fn: "count", Src: "b", New: "n"}}),
		testChain(seed("a", "http://p/x", "b"), HeadOp{K: 5}, expand("a", "http://p/y", "c")),
		testChain(seed("a", "http://p/x", "b"), JoinOp{}),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("chain %d: invalid chain accepted", i)
		}
	}
}

func TestGeneratorColumnValidation(t *testing.T) {
	bad := [][]Op{
		{seed("a", "http://p/x", "b"), expand("ghost", "http://p/y", "c")},
		{seed("a", "http://p/x", "b"), expand("a", "http://p/y", "b")}, // duplicate target
		{seed("a", "http://p/x", "b"), FilterOp{Conds: []Condition{{Col: "ghost", Expr: "?ghost > 1"}}}},
		{seed("a", "http://p/x", "b"), GroupByOp{Cols: []string{"ghost"}}, AggregationOp{Agg: AggSpec{Fn: "count", Src: "b", New: "n"}}},
		{seed("a", "http://p/x", "b"), GroupByOp{Cols: []string{"a"}}, AggregationOp{Agg: AggSpec{Fn: "count", Src: "ghost", New: "n"}}},
		{seed("a", "http://p/x", "b"), SelectColsOp{Cols: []string{"ghost"}}},
		{seed("a", "http://p/x", "b"), SortOp{Keys: []SortKey{{Col: "ghost"}}}},
	}
	for i, ops := range bad {
		if _, err := Generate(testChain(ops...)); err == nil {
			t.Errorf("ops %d: invalid chain generated without error", i)
		}
	}
}

func TestRenameVarDeep(t *testing.T) {
	m, err := Generate(testChain(
		seed("movie", "http://p/starring", "actor"),
		GroupByOp{Cols: []string{"actor"}},
		AggregationOp{Agg: AggSpec{Fn: "count", Src: "movie", New: "n"}},
		FilterOp{Conds: []Condition{{Col: "n", Expr: "?n >= 5"}}},
	))
	if err != nil {
		t.Fatal(err)
	}
	m.renameVar("actor", "person")
	q, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(q, "?actor") {
		t.Fatalf("rename missed a reference:\n%s", q)
	}
	if !strings.Contains(q, "GROUP BY ?person") {
		t.Fatalf("grouping column not renamed:\n%s", q)
	}
}

func TestCloneModelIndependence(t *testing.T) {
	m, err := Generate(testChain(
		seed("movie", "http://p/starring", "actor"),
		expand("actor", "http://p/born", "place"),
	))
	if err != nil {
		t.Fatal(err)
	}
	c := cloneModel(m)
	c.renameVar("actor", "x")
	q, _ := Translate(m)
	if strings.Contains(q, "?x") {
		t.Fatal("cloneModel shares state with the original")
	}
}

func TestNaiveOneSubqueryPerOperator(t *testing.T) {
	q, err := NaiveTranslate(testChain(
		seed("movie", "http://p/starring", "actor"),
		expand("actor", "http://p/born", "place"),
		expand("movie", "http://p/title", "title"),
		FilterOp{Conds: []Condition{{Col: "place", Expr: `regex(str(?place), "US")`}}},
	))
	if err != nil {
		t.Fatal(err)
	}
	// Outer + 3 pattern subqueries + 1 filter subquery.
	if got := strings.Count(q, "SELECT"); got != 5 {
		t.Fatalf("SELECT count = %d, want 5:\n%s", got, q)
	}
}

func TestNaiveGroupingNestsEverything(t *testing.T) {
	q, err := NaiveTranslate(testChain(
		seed("movie", "http://p/starring", "actor"),
		expand("actor", "http://p/born", "place"),
		GroupByOp{Cols: []string{"actor"}},
		AggregationOp{Agg: AggSpec{Fn: "count", Src: "movie", New: "n"}},
		FilterOp{Conds: []Condition{{Col: "n", Expr: "?n >= 3"}}},
	))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q, "GROUP BY ?actor") {
		t.Fatalf("missing GROUP BY:\n%s", q)
	}
	if !strings.Contains(q, "FILTER ( ?n >= 3 )") {
		t.Fatalf("missing filter on aggregate:\n%s", q)
	}
	// The group subquery contains the per-operator subqueries.
	gi := strings.Index(q, "GROUP BY")
	if strings.Count(q[:gi], "SELECT") < 3 {
		t.Fatalf("group subquery should nest the operator subqueries:\n%s", q)
	}
}

func TestModelKeyStableForDedup(t *testing.T) {
	m1, _ := Generate(testChain(seed("a", "http://p/x", "b")))
	m2, _ := Generate(testChain(seed("a", "http://p/x", "b")))
	if m1.key() != m2.key() {
		t.Fatal("identical models produced different keys")
	}
}

func TestValidColumn(t *testing.T) {
	for _, ok := range []string{"a", "actor_name", "_x", "A9"} {
		if !ValidColumn(ok) {
			t.Errorf("ValidColumn(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "9a", "a b", "a-b", "a:b", "?a"} {
		if ValidColumn(bad) {
			t.Errorf("ValidColumn(%q) = true", bad)
		}
	}
}
