package rdf

import (
	"strings"
	"testing"
)

func parseTurtle(t *testing.T, doc string) []Triple {
	t.Helper()
	triples, err := NewTurtleReader(strings.NewReader(doc)).ReadAll()
	if err != nil {
		t.Fatalf("parse error: %v\nin:\n%s", err, doc)
	}
	return triples
}

func TestTurtleBasicTriple(t *testing.T) {
	got := parseTurtle(t, `<http://ex/s> <http://ex/p> <http://ex/o> .`)
	want := Triple{NewIRI("http://ex/s"), NewIRI("http://ex/p"), NewIRI("http://ex/o")}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("got %v", got)
	}
}

func TestTurtlePrefixesAndA(t *testing.T) {
	got := parseTurtle(t, `
@prefix dbpr: <http://dbpedia.org/resource/> .
@prefix dbpp: <http://dbpedia.org/property/> .
dbpr:Alice a dbpr:Actor ;
           dbpp:birthPlace dbpr:United_States .
`)
	if len(got) != 2 {
		t.Fatalf("got %d triples", len(got))
	}
	if got[0].P.Value != RDFType {
		t.Fatalf("'a' not expanded: %v", got[0].P)
	}
	if got[1].O != NewIRI("http://dbpedia.org/resource/United_States") {
		t.Fatalf("prefixed name wrong: %v", got[1].O)
	}
}

func TestTurtleSPARQLStylePrefix(t *testing.T) {
	got := parseTurtle(t, `
PREFIX ex: <http://ex/>
ex:s ex:p ex:o .
`)
	if len(got) != 1 || got[0].S != NewIRI("http://ex/s") {
		t.Fatalf("got %v", got)
	}
}

func TestTurtlePredicateAndObjectLists(t *testing.T) {
	got := parseTurtle(t, `
@prefix ex: <http://ex/> .
ex:m ex:starring ex:a1 , ex:a2 ;
     ex:title "Movie" .
`)
	if len(got) != 3 {
		t.Fatalf("got %d triples, want 3", len(got))
	}
	if got[0].S != got[2].S {
		t.Fatal("subject not carried through ';'")
	}
	if got[0].P != got[1].P {
		t.Fatal("predicate not carried through ','")
	}
}

func TestTurtleLiteralForms(t *testing.T) {
	got := parseTurtle(t, `
@prefix ex: <http://ex/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:s ex:plain "hello" ;
     ex:lang "hallo"@de ;
     ex:typed "5"^^xsd:integer ;
     ex:int 42 ;
     ex:dec 2.5 ;
     ex:dbl 1e3 ;
     ex:neg -7 ;
     ex:bool true .
`)
	objs := map[string]Term{}
	for _, tr := range got {
		objs[tr.P.Value] = tr.O
	}
	cases := map[string]Term{
		"http://ex/plain": NewLiteral("hello"),
		"http://ex/lang":  NewLangLiteral("hallo", "de"),
		"http://ex/typed": NewInteger(5),
		"http://ex/int":   NewInteger(42),
		"http://ex/dec":   NewTypedLiteral("2.5", XSDDecimal),
		"http://ex/dbl":   NewTypedLiteral("1e3", XSDDouble),
		"http://ex/neg":   NewInteger(-7),
		"http://ex/bool":  NewBoolean(true),
	}
	for p, want := range cases {
		if objs[p] != want {
			t.Errorf("%s = %v, want %v", p, objs[p], want)
		}
	}
}

func TestTurtleLongString(t *testing.T) {
	got := parseTurtle(t, `<http://ex/s> <http://ex/p> """line one
line two""" .`)
	if got[0].O.Value != "line one\nline two" {
		t.Fatalf("long string = %q", got[0].O.Value)
	}
}

func TestTurtleEscapes(t *testing.T) {
	got := parseTurtle(t, `<http://ex/s> <http://ex/p> "a\"b\nc" .`)
	if got[0].O.Value != "a\"b\nc" {
		t.Fatalf("escaped string = %q", got[0].O.Value)
	}
}

func TestTurtleBase(t *testing.T) {
	got := parseTurtle(t, `
@base <http://ex.org/> .
<s> <p> <o> .
`)
	if got[0].S != NewIRI("http://ex.org/s") {
		t.Fatalf("base not applied: %v", got[0].S)
	}
}

func TestTurtleBlankNodes(t *testing.T) {
	got := parseTurtle(t, `_:a <http://ex/p> _:b .`)
	if got[0].S != NewBlank("a") || got[0].O != NewBlank("b") {
		t.Fatalf("got %v", got[0])
	}
}

func TestTurtleCommentsAndWhitespace(t *testing.T) {
	got := parseTurtle(t, `
# a comment
<http://ex/s> <http://ex/p> "v" . # trailing comment
# another
`)
	if len(got) != 1 {
		t.Fatalf("got %d triples", len(got))
	}
}

func TestTurtleNumericLocalNameDot(t *testing.T) {
	// The trailing '.' after a pname must terminate the statement, not be
	// swallowed into the local name.
	got := parseTurtle(t, `
@prefix ex: <http://ex/> .
ex:s ex:p ex:v1.2 .
`)
	if len(got) != 1 || got[0].O != NewIRI("http://ex/v1.2") {
		t.Fatalf("got %v", got)
	}
}

func TestTurtleErrors(t *testing.T) {
	bad := []string{
		`<http://ex/s> <http://ex/p> .`,            // missing object
		`"lit" <http://ex/p> <http://ex/o> .`,      // literal subject
		`<http://ex/s> "lit" <http://ex/o> .`,      // literal predicate
		`@prefix ex <http://ex/> .`,                // missing colon
		`@unknown thing .`,                         // unknown directive
		`<http://ex/s> <http://ex/p> nope:local .`, // unbound prefix
		`<http://ex/s> <http://ex/p> "unterminated`,
	}
	for _, doc := range bad {
		if _, err := NewTurtleReader(strings.NewReader(doc)).ReadAll(); err == nil {
			t.Errorf("accepted invalid turtle: %s", doc)
		}
	}
}

func TestTurtleRoundTripThroughNTriples(t *testing.T) {
	doc := `
@prefix ex: <http://ex/> .
ex:m a ex:Film ; ex:starring ex:a1 , ex:a2 ; ex:runtime 120 .
`
	fromTurtle := parseTurtle(t, doc)
	var sb strings.Builder
	if err := WriteNTriples(&sb, fromTurtle); err != nil {
		t.Fatal(err)
	}
	fromNT, err := NewNTriplesReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(fromNT) != len(fromTurtle) {
		t.Fatalf("round trip lost triples: %d vs %d", len(fromNT), len(fromTurtle))
	}
	for i := range fromNT {
		if fromNT[i] != fromTurtle[i] {
			t.Fatalf("triple %d differs: %v vs %v", i, fromNT[i], fromTurtle[i])
		}
	}
}

func TestTurtlePrefixesExposed(t *testing.T) {
	r := NewTurtleReader(strings.NewReader(`
@prefix ex: <http://ex/> .
ex:s ex:p ex:o .
`))
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if got := r.Prefixes().MustExpand("ex:x"); got != "http://ex/x" {
		t.Fatalf("prefixes not exposed: %q", got)
	}
}
