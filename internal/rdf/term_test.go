package rdf

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndPredicates(t *testing.T) {
	iri := NewIRI("http://example.org/a")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() || !iri.IsBound() {
		t.Fatalf("IRI predicates wrong: %+v", iri)
	}
	lit := NewLiteral("hello")
	if !lit.IsLiteral() || lit.Datatype != "" || lit.Lang != "" {
		t.Fatalf("plain literal wrong: %+v", lit)
	}
	if bl := NewBlank("b1"); !bl.IsBlank() {
		t.Fatalf("blank predicate wrong: %+v", bl)
	}
	var zero Term
	if zero.IsBound() {
		t.Fatal("zero Term must be unbound")
	}
}

func TestTypedLiteralNormalizesXSDString(t *testing.T) {
	l := NewTypedLiteral("x", XSDString)
	if l.Datatype != "" {
		t.Fatalf("xsd:string should normalize to empty datatype, got %q", l.Datatype)
	}
	if l != NewLiteral("x") {
		t.Fatal("typed xsd:string literal should equal plain literal")
	}
}

func TestNumericAccessors(t *testing.T) {
	n := NewInteger(42)
	if !n.IsNumeric() {
		t.Fatal("integer literal should be numeric")
	}
	if f, ok := n.AsFloat(); !ok || f != 42 {
		t.Fatalf("AsFloat = %v, %v", f, ok)
	}
	if i, ok := n.AsInt(); !ok || i != 42 {
		t.Fatalf("AsInt = %v, %v", i, ok)
	}
	d := NewDecimal(2.5)
	if i, ok := d.AsInt(); ok {
		t.Fatalf("non-integral decimal should not convert to int, got %d", i)
	}
	if _, ok := NewIRI("http://x").AsFloat(); ok {
		t.Fatal("IRI must not convert to float")
	}
	b := NewBoolean(true)
	if v, ok := b.AsBool(); !ok || !v {
		t.Fatalf("AsBool = %v, %v", v, ok)
	}
}

func TestYear(t *testing.T) {
	cases := []struct {
		term Term
		want int
		ok   bool
	}{
		{NewTypedLiteral("2015-04-09", XSDDate), 2015, true},
		{NewTypedLiteral("2003-01-01T00:00:00", XSDDateTime), 2003, true},
		{NewTypedLiteral("1999", XSDGYear), 1999, true},
		{NewLiteral("07"), 0, false},
		{NewIRI("http://x"), 0, false},
	}
	for _, c := range cases {
		got, ok := c.term.Year()
		if got != c.want || ok != c.ok {
			t.Errorf("Year(%v) = %d,%v; want %d,%v", c.term, got, ok, c.want, c.ok)
		}
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://ex/a"), "<http://ex/a>"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewInteger(7), `"7"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewBlank("b0"), "_:b0"},
		{NewLiteral("a\"b\\c\nd"), `"a\"b\\c\nd"`},
		{Term{}, ""},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	ordered := []Term{
		{},
		NewBlank("a"),
		NewIRI("http://a"),
		NewIRI("http://b"),
		NewInteger(1),
		NewInteger(2),
		NewInteger(10),
	}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := Compare(ordered[i], ordered[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%v, %v) = %d, want < 0", ordered[i], ordered[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v, %v) = %d, want > 0", ordered[i], ordered[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%v, %v) = %d, want 0", ordered[i], ordered[j], got)
			}
		}
	}
}

func TestCompareNumericBeatsLexicographic(t *testing.T) {
	if Compare(NewInteger(9), NewInteger(10)) >= 0 {
		t.Fatal("numeric literals must compare by value, not lexically")
	}
}

func TestTripleValid(t *testing.T) {
	s, p, o := NewIRI("http://s"), NewIRI("http://p"), NewLiteral("o")
	if !(Triple{s, p, o}).Valid() {
		t.Fatal("valid triple rejected")
	}
	if (Triple{o, p, o}).Valid() {
		t.Fatal("literal subject accepted")
	}
	if (Triple{s, NewBlank("b"), o}).Valid() {
		t.Fatal("blank predicate accepted")
	}
	if (Triple{s, p, Term{}}).Valid() {
		t.Fatal("unbound object accepted")
	}
}

func TestEscapeUnescapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		got, err := UnescapeLiteral(EscapeLiteral(s))
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnescapeUnicode(t *testing.T) {
	got, err := UnescapeLiteral(`café \U0001F600`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "café \U0001F600" {
		t.Fatalf("got %q", got)
	}
	if _, err := UnescapeLiteral(`\q`); err == nil {
		t.Fatal("unknown escape accepted")
	}
	if _, err := UnescapeLiteral(`trailing\`); err == nil {
		t.Fatal("dangling escape accepted")
	}
}

// randomTerm generates an arbitrary bound term for property tests.
func randomTerm(r *rand.Rand) Term {
	switch r.Intn(4) {
	case 0:
		return NewIRI("http://example.org/e" + randWord(r))
	case 1:
		return NewLiteral(randText(r))
	case 2:
		return NewLangLiteral(randText(r), []string{"en", "de", "fr"}[r.Intn(3)])
	default:
		return NewInteger(int64(r.Intn(10000) - 5000))
	}
}

func randWord(r *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz0123456789_"
	n := 1 + r.Intn(10)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

func randText(r *rand.Rand) string {
	const chars = "abc XYZ\"\\\n\té日"
	runes := []rune(chars)
	n := r.Intn(12)
	out := make([]rune, n)
	for i := range out {
		out[i] = runes[r.Intn(len(runes))]
	}
	return string(out)
}

func TestTermStringParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		want := randomTerm(r)
		got, err := ParseTerm(want.String())
		if err != nil {
			t.Fatalf("ParseTerm(%q): %v", want.String(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %#v, want %#v", got, want)
		}
	}
}
