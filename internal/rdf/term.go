// Package rdf implements the RDF data model: terms (IRIs, literals, blank
// nodes), triples, prefix management, and the N-Triples serialization format.
//
// The package is the shared vocabulary between the triple store, the SPARQL
// engine, and the RDFFrames core. Terms are small comparable values so they
// can be used directly as map keys.
package rdf

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms plus the zero value,
// which represents an unbound (null) slot in a solution or dataframe row.
type TermKind uint8

// Term kinds. Unbound is the zero value: a Term{} is "no value".
const (
	Unbound TermKind = iota
	IRIKind
	LiteralKind
	BlankKind
)

// Well-known XSD datatype IRIs.
const (
	XSDString   = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger  = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal  = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble   = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean  = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDate     = "http://www.w3.org/2001/XMLSchema#date"
	XSDDateTime = "http://www.w3.org/2001/XMLSchema#dateTime"
	XSDGYear    = "http://www.w3.org/2001/XMLSchema#gYear"
)

// RDFType is the rdf:type predicate IRI.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// Term is an RDF term. For IRIs, Value is the absolute IRI. For literals,
// Value is the lexical form, Datatype the datatype IRI ("" means xsd:string),
// and Lang the optional language tag. For blank nodes, Value is the label.
//
// Term is comparable; the zero Term is the unbound value.
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRIKind, Value: iri} }

// NewLiteral returns a plain string literal.
func NewLiteral(lexical string) Term { return Term{Kind: LiteralKind, Value: lexical} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lexical, datatype string) Term {
	if datatype == XSDString {
		datatype = ""
	}
	return Term{Kind: LiteralKind, Value: lexical, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged string literal.
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: LiteralKind, Value: lexical, Lang: lang}
}

// NewBlank returns a blank node with the given label.
func NewBlank(label string) Term { return Term{Kind: BlankKind, Value: label} }

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return Term{Kind: LiteralKind, Value: strconv.FormatInt(v, 10), Datatype: XSDInteger}
}

// NewDecimal returns an xsd:decimal literal.
func NewDecimal(v float64) Term {
	return Term{Kind: LiteralKind, Value: strconv.FormatFloat(v, 'f', -1, 64), Datatype: XSDDecimal}
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Term {
	return Term{Kind: LiteralKind, Value: strconv.FormatBool(v), Datatype: XSDBoolean}
}

// IsIRI reports whether t is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRIKind }

// IsLiteral reports whether t is a literal.
func (t Term) IsLiteral() bool { return t.Kind == LiteralKind }

// IsBlank reports whether t is a blank node.
func (t Term) IsBlank() bool { return t.Kind == BlankKind }

// IsBound reports whether t is a bound value (not the zero Term).
func (t Term) IsBound() bool { return t.Kind != Unbound }

// IsNumeric reports whether t is a literal with a numeric XSD datatype.
func (t Term) IsNumeric() bool {
	if t.Kind != LiteralKind {
		return false
	}
	switch t.Datatype {
	case XSDInteger, XSDDecimal, XSDDouble:
		return true
	}
	return false
}

// AsFloat returns the numeric value of a literal. It succeeds for numeric
// datatypes and for plain literals whose lexical form parses as a number.
func (t Term) AsFloat() (float64, bool) {
	if t.Kind != LiteralKind {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(t.Value), 64)
	if err != nil || math.IsNaN(f) {
		return 0, false
	}
	return f, true
}

// AsInt returns the integer value of a literal.
func (t Term) AsInt() (int64, bool) {
	if t.Kind != LiteralKind {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t.Value), 10, 64)
	if err != nil {
		f, ok := t.AsFloat()
		if !ok || f != math.Trunc(f) {
			return 0, false
		}
		return int64(f), true
	}
	return n, true
}

// AsBool returns the boolean value of an xsd:boolean literal.
func (t Term) AsBool() (bool, bool) {
	if t.Kind != LiteralKind {
		return false, false
	}
	switch t.Value {
	case "true", "1":
		return true, true
	case "false", "0":
		return false, true
	}
	return false, false
}

// Year extracts the year from an xsd:date, xsd:dateTime or xsd:gYear literal
// (or any literal whose lexical form starts with a 4-digit year).
func (t Term) Year() (int, bool) {
	if t.Kind != LiteralKind {
		return 0, false
	}
	s := t.Value
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	if len(s) < 4 {
		return 0, false
	}
	y, err := strconv.Atoi(s[:4])
	if err != nil {
		return 0, false
	}
	if neg {
		y = -y
	}
	return y, true
}

// String renders the term in N-Triples/SPARQL syntax. The unbound term
// renders as the empty string.
func (t Term) String() string {
	switch t.Kind {
	case IRIKind:
		return "<" + t.Value + ">"
	case LiteralKind:
		s := `"` + EscapeLiteral(t.Value) + `"`
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	case BlankKind:
		return "_:" + t.Value
	}
	return ""
}

// Compare orders terms per the SPARQL ORDER BY total order:
// unbound < blank nodes < IRIs < literals; numeric literals compare by value,
// other literals by lexical form; ties broken deterministically.
func Compare(a, b Term) int {
	if a.Kind != b.Kind {
		return orderRank(a.Kind) - orderRank(b.Kind)
	}
	if a.Kind == LiteralKind {
		af, aok := a.AsFloat()
		bf, bok := b.AsFloat()
		if aok && bok && a.IsNumeric() && b.IsNumeric() {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			}
		}
	}
	if c := strings.Compare(a.Value, b.Value); c != 0 {
		return c
	}
	if c := strings.Compare(a.Datatype, b.Datatype); c != 0 {
		return c
	}
	return strings.Compare(a.Lang, b.Lang)
}

// orderRank gives each term kind its position in the SPARQL ORDER BY total
// order: unbound < blank nodes < IRIs < literals.
func orderRank(k TermKind) int {
	switch k {
	case BlankKind:
		return 1
	case IRIKind:
		return 2
	case LiteralKind:
		return 3
	}
	return 0
}

// Triple is an RDF triple (subject, predicate, object).
type Triple struct {
	S, P, O Term
}

// String renders the triple as one N-Triples statement (without newline).
func (tr Triple) String() string {
	return fmt.Sprintf("%s %s %s .", tr.S, tr.P, tr.O)
}

// Valid reports whether the triple is well formed per the RDF data model:
// subject is an IRI or blank node, predicate an IRI, object any bound term.
func (tr Triple) Valid() bool {
	if tr.S.Kind != IRIKind && tr.S.Kind != BlankKind {
		return false
	}
	if tr.P.Kind != IRIKind {
		return false
	}
	return tr.O.IsBound()
}

// EscapeLiteral escapes a literal lexical form for N-Triples/SPARQL output.
func EscapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// UnescapeLiteral reverses EscapeLiteral, also handling \uXXXX and \UXXXXXXXX.
func UnescapeLiteral(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("rdf: dangling escape in literal %q", s)
		}
		switch s[i] {
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 'b':
			b.WriteByte('\b')
		case 'f':
			b.WriteByte('\f')
		case '"':
			b.WriteByte('"')
		case '\'':
			b.WriteByte('\'')
		case '\\':
			b.WriteByte('\\')
		case 'u', 'U':
			n := 4
			if s[i] == 'U' {
				n = 8
			}
			if i+n >= len(s) {
				return "", fmt.Errorf("rdf: truncated \\%c escape in %q", s[i], s)
			}
			v, err := strconv.ParseUint(s[i+1:i+1+n], 16, 32)
			if err != nil {
				return "", fmt.Errorf("rdf: bad unicode escape in %q: %v", s, err)
			}
			b.WriteRune(rune(v))
			i += n
		default:
			return "", fmt.Errorf("rdf: unknown escape \\%c in %q", s[i], s)
		}
	}
	return b.String(), nil
}
