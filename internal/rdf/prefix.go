package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// PrefixMap maps namespace prefixes (without the trailing colon) to
// namespace IRIs. It expands prefixed names such as "dbpp:starring" to full
// IRIs and compacts IRIs back to prefixed names for readable SPARQL output.
type PrefixMap struct {
	byPrefix map[string]string
}

// NewPrefixMap returns a PrefixMap seeded with the given prefix→IRI bindings.
func NewPrefixMap(bindings map[string]string) *PrefixMap {
	pm := &PrefixMap{byPrefix: make(map[string]string, len(bindings)+4)}
	for p, ns := range bindings {
		pm.Bind(p, ns)
	}
	return pm
}

// CommonPrefixes returns a PrefixMap with the ubiquitous RDF prefixes bound.
func CommonPrefixes() *PrefixMap {
	return NewPrefixMap(map[string]string{
		"rdf":  "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
		"rdfs": "http://www.w3.org/2000/01/rdf-schema#",
		"xsd":  "http://www.w3.org/2001/XMLSchema#",
		"owl":  "http://www.w3.org/2002/07/owl#",
	})
}

// Bind associates prefix with the namespace IRI ns, replacing any previous
// binding for prefix.
func (pm *PrefixMap) Bind(prefix, ns string) {
	if pm.byPrefix == nil {
		pm.byPrefix = make(map[string]string)
	}
	pm.byPrefix[strings.TrimSuffix(prefix, ":")] = ns
}

// Lookup returns the namespace bound to prefix.
func (pm *PrefixMap) Lookup(prefix string) (string, bool) {
	ns, ok := pm.byPrefix[prefix]
	return ns, ok
}

// Expand resolves a prefixed name ("dbpp:starring") to a full IRI. Inputs
// that are already full IRIs (contain "://" or start with '<') are returned
// unchanged, with angle brackets stripped.
func (pm *PrefixMap) Expand(name string) (string, error) {
	if strings.HasPrefix(name, "<") && strings.HasSuffix(name, ">") {
		return name[1 : len(name)-1], nil
	}
	if strings.Contains(name, "://") {
		return name, nil
	}
	i := strings.Index(name, ":")
	if i < 0 {
		return "", fmt.Errorf("rdf: %q is neither a full IRI nor a prefixed name", name)
	}
	ns, ok := pm.byPrefix[name[:i]]
	if !ok {
		return "", fmt.Errorf("rdf: unknown prefix %q in %q", name[:i], name)
	}
	return ns + name[i+1:], nil
}

// MustExpand is Expand for inputs known to be valid; it panics on error.
func (pm *PrefixMap) MustExpand(name string) string {
	iri, err := pm.Expand(name)
	if err != nil {
		panic(err)
	}
	return iri
}

// Compact rewrites a full IRI as a prefixed name if a bound namespace is a
// prefix of it and the local part is a simple name; otherwise it returns the
// IRI in angle brackets.
func (pm *PrefixMap) Compact(iri string) string {
	best, bestNS := "", ""
	for p, ns := range pm.byPrefix {
		if strings.HasPrefix(iri, ns) && len(ns) > len(bestNS) {
			local := iri[len(ns):]
			if isLocalName(local) {
				best, bestNS = p, ns
			}
		}
	}
	if bestNS == "" {
		return "<" + iri + ">"
	}
	return best + ":" + iri[len(bestNS):]
}

// Bindings returns the prefix bindings sorted by prefix, for deterministic
// SPARQL PREFIX emission.
func (pm *PrefixMap) Bindings() [][2]string {
	out := make([][2]string, 0, len(pm.byPrefix))
	for p, ns := range pm.byPrefix {
		out = append(out, [2]string{p, ns})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Clone returns an independent copy of the prefix map.
func (pm *PrefixMap) Clone() *PrefixMap {
	c := &PrefixMap{byPrefix: make(map[string]string, len(pm.byPrefix))}
	for p, ns := range pm.byPrefix {
		c.byPrefix[p] = ns
	}
	return c
}

// Merge copies all bindings from other into pm (other wins on conflicts).
func (pm *PrefixMap) Merge(other *PrefixMap) {
	if other == nil {
		return
	}
	for p, ns := range other.byPrefix {
		pm.Bind(p, ns)
	}
}

func isLocalName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}
