package rdf

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestParseTripleLine(t *testing.T) {
	got, err := ParseTripleLine(`<http://s> <http://p> "v"@en . # comment`)
	if err != nil {
		t.Fatal(err)
	}
	want := Triple{NewIRI("http://s"), NewIRI("http://p"), NewLangLiteral("v", "en")}
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestParseTripleLineErrors(t *testing.T) {
	bad := []string{
		"",
		"<http://s> <http://p>",
		`<http://s> <http://p> "v"`,
		`<http://s> <http://p> "v" junk`,
		`"lit" <http://p> <http://o> .`,
		`<http://s> _:b <http://o> .`,
		`<http://s> <http://p <http://o> .`,
		`<http://s> <http://p> "unterminated .`,
	}
	for _, line := range bad {
		if _, err := ParseTripleLine(line); err == nil {
			t.Errorf("ParseTripleLine(%q) accepted invalid input", line)
		}
	}
}

func TestNTriplesReaderSkipsCommentsAndBlanks(t *testing.T) {
	doc := "# header\n\n<http://s> <http://p> <http://o> .\n  \n# done\n"
	got, err := NewNTriplesReader(strings.NewReader(doc)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d triples, want 1", len(got))
	}
}

func TestNTriplesReaderReportsLineNumbers(t *testing.T) {
	doc := "<http://s> <http://p> <http://o> .\nbroken line\n"
	r := NewNTriplesReader(strings.NewReader(doc))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Read()
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T %v", err, err)
	}
	if pe.Line != 2 {
		t.Fatalf("error line = %d, want 2", pe.Line)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var triples []Triple
	for i := 0; i < 500; i++ {
		tr := Triple{
			S: NewIRI("http://example.org/s" + randWord(r)),
			P: NewIRI("http://example.org/p" + randWord(r)),
			O: randomTerm(r),
		}
		triples = append(triples, tr)
	}
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, triples); err != nil {
		t.Fatal(err)
	}
	got, err := NewNTriplesReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, triples) {
		t.Fatal("round trip mismatch")
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewNTriplesReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestParseBlankNodes(t *testing.T) {
	tr, err := ParseTripleLine("_:a <http://p> _:b0 .")
	if err != nil {
		t.Fatal(err)
	}
	if tr.S != NewBlank("a") || tr.O != NewBlank("b0") {
		t.Fatalf("got %v", tr)
	}
}

func TestParseTypedLiteralObject(t *testing.T) {
	tr, err := ParseTripleLine(`<http://s> <http://p> "12"^^<http://www.w3.org/2001/XMLSchema#integer> .`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.O != NewInteger(12) {
		t.Fatalf("got %v", tr.O)
	}
}
