package rdf

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// syntheticNT builds an N-Triples document of n statements with comments and
// blank lines sprinkled in, large enough to span several parser chunks when
// repeated.
func syntheticNT(n int) []byte {
	var buf bytes.Buffer
	buf.WriteString("# generated test document\n\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "<http://ex/s%06d> <http://ex/p%d> \"value %d with a reasonably long padding payload\" .\n", i, i%7, i)
		if i%97 == 0 {
			buf.WriteString("# interleaved comment\n\n")
		}
	}
	return buf.Bytes()
}

func TestParallelMatchesSerial(t *testing.T) {
	doc := syntheticNT(20000) // ~2 MB, several chunks
	want, err := NewNTriplesReader(bytes.NewReader(doc)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		got, err := ParseNTriplesParallelAll(bytes.NewReader(doc), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel parse diverges from serial (%d vs %d triples)", workers, len(got), len(want))
		}
	}
}

func TestParallelNoTrailingNewline(t *testing.T) {
	doc := strings.TrimSuffix(string(syntheticNT(3000)), "\n")
	want, err := NewNTriplesReader(strings.NewReader(doc)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseNTriplesParallelAll(strings.NewReader(doc), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d triples, want %d", len(got), len(want))
	}
}

func TestParallelEmptyInput(t *testing.T) {
	got, err := ParseNTriplesParallelAll(strings.NewReader(""), 4)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %d triples, err %v", len(got), err)
	}
}

func TestParallelErrorCarriesAbsoluteLine(t *testing.T) {
	// Corrupt one statement deep in the document; the reported line number
	// must be document-absolute even though the error occurs mid-chunk.
	doc := syntheticNT(20000)
	lines := bytes.Split(doc, []byte{'\n'})
	badLine := 15000
	lines[badLine-1] = []byte("this is not a triple")
	doc = bytes.Join(lines, []byte{'\n'})

	_, err := ParseNTriplesParallelAll(bytes.NewReader(doc), 4)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.Line != badLine {
		t.Fatalf("error line = %d, want %d", pe.Line, badLine)
	}
}

func TestParallelEmitErrorStopsEarly(t *testing.T) {
	doc := syntheticNT(20000)
	stop := errors.New("stop")
	calls := 0
	err := ParseNTriplesParallel(bytes.NewReader(doc), 4, func(batch []Triple) error {
		calls++
		return stop
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after error, want 1", calls)
	}
}

func TestParallelBatchesArriveInDocumentOrder(t *testing.T) {
	doc := syntheticNT(20000)
	next := 0
	err := ParseNTriplesParallel(bytes.NewReader(doc), 4, func(batch []Triple) error {
		for _, tr := range batch {
			want := fmt.Sprintf("http://ex/s%06d", next)
			if tr.S.Value != want {
				return fmt.Errorf("out of order: got %s, want %s", tr.S.Value, want)
			}
			next++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 20000 {
		t.Fatalf("emitted %d triples, want 20000", next)
	}
}

func BenchmarkParseNTriplesSerial(b *testing.B) {
	doc := syntheticNT(50000)
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewNTriplesReader(bytes.NewReader(doc)).ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseNTriplesParallel(b *testing.B) {
	doc := syntheticNT(50000)
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseNTriplesParallelAll(bytes.NewReader(doc), 0); err != nil {
			b.Fatal(err)
		}
	}
}
