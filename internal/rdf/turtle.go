package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TurtleReader parses the Turtle subset that public knowledge graph dumps
// use: @prefix/@base directives (and their SPARQL-style PREFIX/BASE forms),
// prefixed names, the 'a' keyword, predicate lists with ';', object lists
// with ',', numeric/boolean literal shorthand, and long (triple-quoted)
// strings. Blank node property lists and collections are not supported.
type TurtleReader struct {
	r        *bufio.Reader
	prefixes *PrefixMap
	base     string
	line     int
	queue    []Triple
	subject  Term // current subject for ';' continuation
	pred     Term // current predicate for ',' continuation
}

// NewTurtleReader returns a reader parsing Turtle from r.
func NewTurtleReader(r io.Reader) *TurtleReader {
	return &TurtleReader{r: bufio.NewReaderSize(r, 64*1024), prefixes: NewPrefixMap(nil), line: 1}
}

// Prefixes returns the prefix map accumulated from @prefix directives.
func (tr *TurtleReader) Prefixes() *PrefixMap { return tr.prefixes.Clone() }

func (tr *TurtleReader) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", tr.line, fmt.Sprintf(format, args...))
}

// Read returns the next triple, or io.EOF at end of input.
func (tr *TurtleReader) Read() (Triple, error) {
	for {
		if len(tr.queue) > 0 {
			t := tr.queue[0]
			tr.queue = tr.queue[1:]
			return t, nil
		}
		if err := tr.parseStatement(); err != nil {
			return Triple{}, err
		}
	}
}

// ReadAll parses the remaining document.
func (tr *TurtleReader) ReadAll() ([]Triple, error) {
	var out []Triple
	for {
		t, err := tr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// parseStatement parses one directive or triple statement into the queue.
func (tr *TurtleReader) parseStatement() error {
	if err := tr.skipWS(); err != nil {
		return err
	}
	c, err := tr.peekByte()
	if err != nil {
		return err
	}
	if c == '@' {
		return tr.parseDirective()
	}
	// SPARQL-style PREFIX/BASE (case-insensitive, no trailing dot).
	if word, ok := tr.peekWord(); ok {
		switch strings.ToUpper(word) {
		case "PREFIX":
			tr.discard(len(word))
			return tr.parsePrefixBody(false)
		case "BASE":
			tr.discard(len(word))
			return tr.parseBaseBody(false)
		}
	}
	return tr.parseTriples()
}

func (tr *TurtleReader) parseDirective() error {
	tr.discard(1) // '@'
	word, _ := tr.peekWord()
	switch strings.ToLower(word) {
	case "prefix":
		tr.discard(len(word))
		return tr.parsePrefixBody(true)
	case "base":
		tr.discard(len(word))
		return tr.parseBaseBody(true)
	}
	return tr.errf("unknown directive @%s", word)
}

func (tr *TurtleReader) parsePrefixBody(dotTerminated bool) error {
	if err := tr.skipWS(); err != nil {
		return err
	}
	prefix, err := tr.readUntilByte(':')
	if err != nil {
		return tr.errf("malformed @prefix")
	}
	if err := tr.skipWS(); err != nil {
		return err
	}
	iri, err := tr.readIRIRef()
	if err != nil {
		return err
	}
	tr.prefixes.Bind(strings.TrimSpace(prefix), tr.resolve(iri))
	if dotTerminated {
		return tr.expectDot()
	}
	return nil
}

func (tr *TurtleReader) parseBaseBody(dotTerminated bool) error {
	if err := tr.skipWS(); err != nil {
		return err
	}
	iri, err := tr.readIRIRef()
	if err != nil {
		return err
	}
	tr.base = iri
	if dotTerminated {
		return tr.expectDot()
	}
	return nil
}

// parseTriples parses "subject predicateObjectList .".
func (tr *TurtleReader) parseTriples() error {
	subj, err := tr.readTerm()
	if err != nil {
		return err
	}
	if subj.Kind != IRIKind && subj.Kind != BlankKind {
		return tr.errf("subject must be an IRI or blank node, got %s", subj)
	}
	tr.subject = subj
	for {
		if err := tr.skipWS(); err != nil {
			return err
		}
		pred, err := tr.readVerb()
		if err != nil {
			return err
		}
		tr.pred = pred
		for {
			if err := tr.skipWS(); err != nil {
				return err
			}
			obj, err := tr.readTerm()
			if err != nil {
				return err
			}
			t := Triple{S: tr.subject, P: tr.pred, O: obj}
			if !t.Valid() {
				return tr.errf("malformed triple %s", t)
			}
			tr.queue = append(tr.queue, t)
			if err := tr.skipWS(); err != nil {
				return err
			}
			c, err := tr.peekByte()
			if err != nil {
				return err
			}
			if c != ',' {
				break
			}
			tr.discard(1)
		}
		c, err := tr.peekByte()
		if err != nil {
			return err
		}
		switch c {
		case ';':
			tr.discard(1)
			// Allow a dangling ';' before '.'.
			if err := tr.skipWS(); err != nil {
				return err
			}
			if c2, err := tr.peekByte(); err == nil && c2 == '.' {
				tr.discard(1)
				return nil
			}
			continue
		case '.':
			tr.discard(1)
			return nil
		}
		return tr.errf("expected ';' or '.', got %q", c)
	}
}

func (tr *TurtleReader) readVerb() (Term, error) {
	if word, ok := tr.peekWord(); ok && word == "a" {
		tr.discard(1)
		return NewIRI(RDFType), nil
	}
	t, err := tr.readTerm()
	if err != nil {
		return Term{}, err
	}
	if t.Kind != IRIKind {
		return Term{}, tr.errf("predicate must be an IRI, got %s", t)
	}
	return t, nil
}

// readTerm reads an IRI, prefixed name, blank node, or literal.
func (tr *TurtleReader) readTerm() (Term, error) {
	if err := tr.skipWS(); err != nil {
		return Term{}, err
	}
	c, err := tr.peekByte()
	if err != nil {
		return Term{}, err
	}
	switch {
	case c == '<':
		iri, err := tr.readIRIRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(tr.resolve(iri)), nil
	case c == '_':
		tr.discard(1)
		if c2, _ := tr.peekByte(); c2 != ':' {
			return Term{}, tr.errf("malformed blank node")
		}
		tr.discard(1)
		label := tr.readName()
		if label == "" {
			return Term{}, tr.errf("empty blank node label")
		}
		return NewBlank(label), nil
	case c == '"':
		return tr.readLiteral()
	case c >= '0' && c <= '9' || c == '-' || c == '+':
		return tr.readNumber()
	default:
		// Prefixed name or boolean.
		word := tr.readName()
		if word == "true" || word == "false" {
			return NewBoolean(word == "true"), nil
		}
		c2, err := tr.peekByte()
		if err != nil || c2 != ':' {
			return Term{}, tr.errf("expected ':' after prefix %q", word)
		}
		tr.discard(1)
		local := tr.readLocal()
		iri, err := tr.prefixes.Expand(word + ":" + local)
		if err != nil {
			return Term{}, tr.errf("%v", err)
		}
		return NewIRI(iri), nil
	}
}

func (tr *TurtleReader) readLiteral() (Term, error) {
	lex, err := tr.readString()
	if err != nil {
		return Term{}, err
	}
	c, err := tr.peekByte()
	if err == nil && c == '@' {
		tr.discard(1)
		lang := tr.readName()
		for {
			c2, err := tr.peekByte()
			if err != nil || c2 != '-' {
				break
			}
			tr.discard(1)
			lang += "-" + tr.readName()
		}
		return NewLangLiteral(lex, lang), nil
	}
	if err == nil && c == '^' {
		tr.discard(1)
		if c2, _ := tr.peekByte(); c2 != '^' {
			return Term{}, tr.errf("malformed datatype suffix")
		}
		tr.discard(1)
		dt, err := tr.readTerm()
		if err != nil {
			return Term{}, err
		}
		if dt.Kind != IRIKind {
			return Term{}, tr.errf("datatype must be an IRI")
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

// readString reads a short or long (triple-quoted) string.
func (tr *TurtleReader) readString() (string, error) {
	tr.discard(1) // opening '"'
	// Long string?
	if tr.hasPrefix(`""`) {
		tr.discard(2)
		var sb strings.Builder
		for {
			c, err := tr.readByte()
			if err != nil {
				return "", tr.errf("unterminated long string")
			}
			if c == '"' && tr.hasPrefix(`""`) {
				tr.discard(2)
				return sb.String(), nil
			}
			if c == '\n' {
				tr.line++
			}
			sb.WriteByte(c)
		}
	}
	var raw strings.Builder
	for {
		c, err := tr.readByte()
		if err != nil {
			return "", tr.errf("unterminated string")
		}
		switch c {
		case '\\':
			c2, err := tr.readByte()
			if err != nil {
				return "", tr.errf("dangling escape")
			}
			raw.WriteByte('\\')
			raw.WriteByte(c2)
		case '"':
			return UnescapeLiteral(raw.String())
		case '\n':
			return "", tr.errf("newline in short string")
		default:
			raw.WriteByte(c)
		}
	}
}

func (tr *TurtleReader) readNumber() (Term, error) {
	var sb strings.Builder
	dots := 0
	for {
		c, err := tr.peekByte()
		if err != nil {
			break
		}
		if c >= '0' && c <= '9' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			sb.WriteByte(c)
			tr.discard(1)
			continue
		}
		if c == '.' {
			// A trailing dot is the statement terminator.
			rest, _ := tr.r.Peek(2)
			if len(rest) == 2 && (rest[1] < '0' || rest[1] > '9') {
				break
			}
			dots++
			sb.WriteByte(c)
			tr.discard(1)
			continue
		}
		break
	}
	s := sb.String()
	if _, err := strconv.ParseFloat(s, 64); err != nil {
		return Term{}, tr.errf("malformed number %q", s)
	}
	if dots > 0 || strings.ContainsAny(s, "eE") {
		if strings.ContainsAny(s, "eE") {
			return NewTypedLiteral(s, XSDDouble), nil
		}
		return NewTypedLiteral(s, XSDDecimal), nil
	}
	return NewTypedLiteral(s, XSDInteger), nil
}

func (tr *TurtleReader) resolve(iri string) string {
	if tr.base != "" && !strings.Contains(iri, "://") && !strings.HasPrefix(iri, "urn:") {
		return tr.base + iri
	}
	return iri
}

// --- low-level scanning helpers ---

func (tr *TurtleReader) peekByte() (byte, error) {
	b, err := tr.r.Peek(1)
	if err != nil {
		return 0, io.EOF
	}
	return b[0], nil
}

func (tr *TurtleReader) readByte() (byte, error) {
	c, err := tr.r.ReadByte()
	if err != nil {
		return 0, io.EOF
	}
	return c, nil
}

func (tr *TurtleReader) discard(n int) { tr.r.Discard(n) }

func (tr *TurtleReader) hasPrefix(s string) bool {
	b, err := tr.r.Peek(len(s))
	return err == nil && string(b) == s
}

// skipWS skips whitespace and comments; io.EOF surfaces to the caller.
func (tr *TurtleReader) skipWS() error {
	for {
		c, err := tr.peekByte()
		if err != nil {
			return io.EOF
		}
		switch c {
		case '\n':
			tr.line++
			tr.discard(1)
		case ' ', '\t', '\r':
			tr.discard(1)
		case '#':
			for {
				c2, err := tr.readByte()
				if err != nil {
					return io.EOF
				}
				if c2 == '\n' {
					tr.line++
					break
				}
			}
		default:
			return nil
		}
	}
}

// peekWord peeks the next bare word without consuming it.
func (tr *TurtleReader) peekWord() (string, bool) {
	for n := 16; ; n *= 2 {
		b, _ := tr.r.Peek(n)
		i := 0
		for i < len(b) && (b[i] >= 'a' && b[i] <= 'z' || b[i] >= 'A' && b[i] <= 'Z') {
			i++
		}
		if i == 0 {
			return "", false
		}
		if i < len(b) || len(b) < n {
			return string(b[:i]), true
		}
	}
}

func (tr *TurtleReader) readName() string {
	var sb strings.Builder
	for {
		c, err := tr.peekByte()
		if err != nil {
			break
		}
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			sb.WriteByte(c)
			tr.discard(1)
			continue
		}
		break
	}
	return sb.String()
}

// readLocal reads a prefixed-name local part ('.' only when followed by
// another local character).
func (tr *TurtleReader) readLocal() string {
	var sb strings.Builder
	for {
		c, err := tr.peekByte()
		if err != nil {
			break
		}
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			sb.WriteByte(c)
			tr.discard(1)
			continue
		}
		if c == '.' {
			b, _ := tr.r.Peek(2)
			if len(b) == 2 && (isBlankLabelChar(b[1]) && b[1] != '.') {
				sb.WriteByte(c)
				tr.discard(1)
				continue
			}
		}
		break
	}
	return sb.String()
}

func (tr *TurtleReader) readUntilByte(stop byte) (string, error) {
	var sb strings.Builder
	for {
		c, err := tr.readByte()
		if err != nil {
			return "", io.EOF
		}
		if c == stop {
			return sb.String(), nil
		}
		sb.WriteByte(c)
	}
}

func (tr *TurtleReader) readIRIRef() (string, error) {
	c, err := tr.peekByte()
	if err != nil || c != '<' {
		return "", tr.errf("expected IRI")
	}
	tr.discard(1)
	return tr.readUntilByte('>')
}

func (tr *TurtleReader) expectDot() error {
	if err := tr.skipWS(); err != nil {
		return err
	}
	c, err := tr.peekByte()
	if err != nil || c != '.' {
		return tr.errf("expected '.' after directive")
	}
	tr.discard(1)
	return nil
}
