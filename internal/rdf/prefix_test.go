package rdf

import "testing"

func newTestPrefixes() *PrefixMap {
	return NewPrefixMap(map[string]string{
		"dbpp": "http://dbpedia.org/property/",
		"dbpr": "http://dbpedia.org/resource/",
		"rdfs": "http://www.w3.org/2000/01/rdf-schema#",
	})
}

func TestExpand(t *testing.T) {
	pm := newTestPrefixes()
	cases := []struct {
		in, want string
	}{
		{"dbpp:starring", "http://dbpedia.org/property/starring"},
		{"<http://x/y>", "http://x/y"},
		{"http://x/y", "http://x/y"},
	}
	for _, c := range cases {
		got, err := pm.Expand(c.in)
		if err != nil || got != c.want {
			t.Errorf("Expand(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
	if _, err := pm.Expand("nope:thing"); err == nil {
		t.Error("unknown prefix accepted")
	}
	if _, err := pm.Expand("noprefix"); err == nil {
		t.Error("bare name accepted")
	}
}

func TestCompact(t *testing.T) {
	pm := newTestPrefixes()
	if got := pm.Compact("http://dbpedia.org/property/starring"); got != "dbpp:starring" {
		t.Errorf("Compact = %q", got)
	}
	if got := pm.Compact("http://unknown.org/x"); got != "<http://unknown.org/x>" {
		t.Errorf("Compact unknown = %q", got)
	}
	// Local parts with path separators must not compact.
	if got := pm.Compact("http://dbpedia.org/property/a/b"); got != "<http://dbpedia.org/property/a/b>" {
		t.Errorf("Compact with slash = %q", got)
	}
}

func TestCompactPrefersLongestNamespace(t *testing.T) {
	pm := NewPrefixMap(map[string]string{
		"a": "http://ex.org/",
		"b": "http://ex.org/deep/",
	})
	if got := pm.Compact("http://ex.org/deep/x"); got != "b:x" {
		t.Errorf("Compact = %q, want b:x", got)
	}
}

func TestBindingsSortedAndCloneIndependent(t *testing.T) {
	pm := newTestPrefixes()
	b := pm.Bindings()
	for i := 1; i < len(b); i++ {
		if b[i-1][0] >= b[i][0] {
			t.Fatal("bindings not sorted")
		}
	}
	c := pm.Clone()
	c.Bind("zzz", "http://zzz/")
	if _, ok := pm.Lookup("zzz"); ok {
		t.Fatal("Clone is not independent")
	}
}

func TestMerge(t *testing.T) {
	pm := newTestPrefixes()
	other := NewPrefixMap(map[string]string{"dbpo": "http://dbpedia.org/ontology/"})
	pm.Merge(other)
	if got := pm.MustExpand("dbpo:genre"); got != "http://dbpedia.org/ontology/genre" {
		t.Fatalf("merge failed: %q", got)
	}
	pm.Merge(nil) // must not panic
}

func TestCommonPrefixes(t *testing.T) {
	pm := CommonPrefixes()
	if got := pm.MustExpand("rdf:type"); got != RDFType {
		t.Fatalf("rdf:type = %q", got)
	}
}
