package rdf

import (
	"bufio"
	"bytes"
	"io"
	"runtime"
	"strings"
)

// parallelChunkSize is the target byte size of the line-aligned chunks the
// parallel parser fans out to its worker pool. Large enough that chunk
// bookkeeping is negligible next to parsing, small enough that a handful of
// chunks are in flight even for modest documents.
const parallelChunkSize = 256 * 1024

// ntChunk is one line-aligned slice of the input document plus the channel
// its parsed result comes back on. Giving every chunk its own result channel
// lets workers complete out of order while the caller consumes strictly in
// document order.
type ntChunk struct {
	data      []byte
	firstLine int // 1-based line number of the chunk's first line
	out       chan ntParsed
}

type ntParsed struct {
	triples []Triple
	err     error
}

// ParseNTriplesParallel parses an N-Triples document using a pool of
// `workers` parser goroutines (workers <= 0 means one per available CPU).
// The input is split into line-aligned chunks that are parsed concurrently;
// parsed batches are handed to emit on the calling goroutine in document
// order, so the caller observes exactly the sequence a serial parse would
// produce. The batch slice passed to emit is only valid for the duration of
// the call. Parsing stops at the first error — a *ParseError carrying the
// original line number, an emit error, or a read error.
func ParseNTriplesParallel(r io.Reader, workers int, emit func([]Triple) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return parseNTriplesSerial(r, emit)
	}

	jobs := make(chan *ntChunk, workers)
	order := make(chan *ntChunk, 2*workers)
	done := make(chan struct{})
	defer close(done)

	var readErr error
	go func() {
		defer close(jobs)
		defer close(order)
		readErr = readChunks(r, jobs, order, done)
	}()
	for i := 0; i < workers; i++ {
		go func() {
			for c := range jobs {
				triples, err := parseChunk(c.data, c.firstLine)
				c.out <- ntParsed{triples: triples, err: err}
			}
		}()
	}

	for c := range order {
		p := <-c.out
		if p.err != nil {
			return p.err
		}
		if err := emit(p.triples); err != nil {
			return err
		}
	}
	return readErr
}

// ParseNTriplesParallelAll is ParseNTriplesParallel collecting every triple.
func ParseNTriplesParallelAll(r io.Reader, workers int) ([]Triple, error) {
	var out []Triple
	err := ParseNTriplesParallel(r, workers, func(batch []Triple) error {
		out = append(out, batch...)
		return nil
	})
	return out, err
}

// readChunks slices r into line-aligned chunks, publishing each to the
// worker pool (jobs) and to the in-order consumer (order). It stops early
// when done closes, which the consumer uses to abandon the stream on error.
func readChunks(r io.Reader, jobs, order chan<- *ntChunk, done <-chan struct{}) error {
	br := bufio.NewReaderSize(r, parallelChunkSize)
	line := 1
	for {
		buf := make([]byte, parallelChunkSize)
		n, err := io.ReadFull(br, buf)
		buf = buf[:n]
		atEOF := false
		switch err {
		case nil:
			// Mid-stream: extend the chunk to the next line boundary so no
			// statement straddles two chunks.
			rest, lerr := br.ReadBytes('\n')
			buf = append(buf, rest...)
			if lerr == io.EOF {
				atEOF = true
			} else if lerr != nil {
				return lerr
			}
		case io.EOF, io.ErrUnexpectedEOF:
			atEOF = true
		default:
			return err
		}
		if len(buf) > 0 {
			c := &ntChunk{data: buf, firstLine: line, out: make(chan ntParsed, 1)}
			select {
			case order <- c:
			case <-done:
				return nil
			}
			select {
			case jobs <- c:
			case <-done:
				return nil
			}
			line += bytes.Count(buf, []byte{'\n'})
		}
		if atEOF {
			return nil
		}
	}
}

// parseChunk parses the statements of one line-aligned chunk, attributing
// errors to their absolute line number in the document.
func parseChunk(data []byte, firstLine int) ([]Triple, error) {
	// Rough preallocation: benchmark-graph statements run ~100 bytes.
	triples := make([]Triple, 0, len(data)/96)
	line := firstLine
	for len(data) > 0 {
		var raw []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			raw, data = data[:i], data[i+1:]
		} else {
			raw, data = data, nil
		}
		text := strings.TrimSpace(string(raw))
		if text != "" && !strings.HasPrefix(text, "#") {
			t, err := ParseTripleLine(text)
			if err != nil {
				return nil, &ParseError{Line: line, Msg: err.Error()}
			}
			triples = append(triples, t)
		}
		line++
	}
	return triples, nil
}

// parseNTriplesSerial is the single-worker path: a plain incremental parse
// that still delivers triples to emit in batches.
func parseNTriplesSerial(r io.Reader, emit func([]Triple) error) error {
	nr := NewNTriplesReader(r)
	batch := make([]Triple, 0, 1024)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := emit(batch)
		batch = batch[:0]
		return err
	}
	for {
		t, err := nr.Read()
		if err == io.EOF {
			return flush()
		}
		if err != nil {
			return err
		}
		batch = append(batch, t)
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
}
