package rdf

import (
	"encoding/binary"
	"fmt"
)

// Binary term codec: the length-prefixed wire form of one Term, shared by
// the store's write-ahead log (internal/store/wal.go). The layout is one
// kind byte followed by the uvarint-length-prefixed value, and for literals
// the datatype and language tag the same way. Decoding is strict — an
// unknown kind byte or a truncated field is an error, never a best-effort
// term — because the WAL reader uses decode failures to detect corruption.

// AppendTerm appends the binary encoding of t to buf and returns the
// extended slice.
func AppendTerm(buf []byte, t Term) []byte {
	buf = append(buf, byte(t.Kind))
	buf = appendString(buf, t.Value)
	if t.Kind == LiteralKind {
		buf = appendString(buf, t.Datatype)
		buf = appendString(buf, t.Lang)
	}
	return buf
}

// DecodeTerm decodes one term from the front of buf, returning the term and
// the number of bytes consumed.
func DecodeTerm(buf []byte) (Term, int, error) {
	if len(buf) == 0 {
		return Term{}, 0, fmt.Errorf("rdf: decode term: empty buffer")
	}
	kind := TermKind(buf[0])
	switch kind {
	case IRIKind, LiteralKind, BlankKind:
	default:
		return Term{}, 0, fmt.Errorf("rdf: decode term: unknown kind byte %d", buf[0])
	}
	n := 1
	value, used, err := decodeString(buf[n:])
	if err != nil {
		return Term{}, 0, fmt.Errorf("rdf: decode term value: %w", err)
	}
	n += used
	t := Term{Kind: kind, Value: value}
	if kind == LiteralKind {
		if t.Datatype, used, err = decodeString(buf[n:]); err != nil {
			return Term{}, 0, fmt.Errorf("rdf: decode term datatype: %w", err)
		}
		n += used
		if t.Lang, used, err = decodeString(buf[n:]); err != nil {
			return Term{}, 0, fmt.Errorf("rdf: decode term lang: %w", err)
		}
		n += used
	}
	return t, n, nil
}

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decodeString decodes a uvarint-length-prefixed string from the front of
// buf, returning the string and the bytes consumed.
func decodeString(buf []byte) (string, int, error) {
	l, used := binary.Uvarint(buf)
	if used <= 0 {
		return "", 0, fmt.Errorf("rdf: bad string length prefix")
	}
	if uint64(len(buf)-used) < l {
		return "", 0, fmt.Errorf("rdf: string length %d exceeds remaining %d bytes", l, len(buf)-used)
	}
	return string(buf[used : used+int(l)]), used + int(l), nil
}
