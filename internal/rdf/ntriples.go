package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseError describes a syntax error in an N-Triples document.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s", e.Line, e.Msg)
}

// NTriplesReader parses an N-Triples document incrementally.
type NTriplesReader struct {
	sc   *bufio.Scanner
	line int
}

// NewNTriplesReader returns a reader that parses N-Triples from r.
func NewNTriplesReader(r io.Reader) *NTriplesReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &NTriplesReader{sc: sc}
}

// Read returns the next triple, or io.EOF when the document is exhausted.
func (nr *NTriplesReader) Read() (Triple, error) {
	for nr.sc.Scan() {
		nr.line++
		line := strings.TrimSpace(nr.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTripleLine(line)
		if err != nil {
			return Triple{}, &ParseError{Line: nr.line, Msg: err.Error()}
		}
		return t, nil
	}
	if err := nr.sc.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ReadAll parses every triple in the document.
func (nr *NTriplesReader) ReadAll() ([]Triple, error) {
	var out []Triple
	for {
		t, err := nr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// ParseTripleLine parses one N-Triples statement (terminated by '.').
func ParseTripleLine(line string) (Triple, error) {
	p := &termScanner{s: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	p.skipSpace()
	if p.i >= len(p.s) || p.s[p.i] != '.' {
		return Triple{}, fmt.Errorf("missing terminating '.'")
	}
	p.i++
	p.skipSpace()
	if p.i < len(p.s) && p.s[p.i] != '#' {
		return Triple{}, fmt.Errorf("trailing content after '.'")
	}
	tr := Triple{S: s, P: pr, O: o}
	if !tr.Valid() {
		return Triple{}, fmt.Errorf("malformed triple %s", tr)
	}
	return tr, nil
}

// ParseTerm parses a single term in N-Triples syntax.
func ParseTerm(s string) (Term, error) {
	p := &termScanner{s: s}
	t, err := p.term()
	if err != nil {
		return Term{}, err
	}
	p.skipSpace()
	if p.i != len(p.s) {
		return Term{}, fmt.Errorf("trailing content after term in %q", s)
	}
	return t, nil
}

type termScanner struct {
	s string
	i int
}

func (p *termScanner) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *termScanner) term() (Term, error) {
	p.skipSpace()
	if p.i >= len(p.s) {
		return Term{}, fmt.Errorf("unexpected end of statement")
	}
	switch p.s[p.i] {
	case '<':
		end := strings.IndexByte(p.s[p.i:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated IRI")
		}
		iri := p.s[p.i+1 : p.i+end]
		p.i += end + 1
		return NewIRI(iri), nil
	case '_':
		if p.i+1 >= len(p.s) || p.s[p.i+1] != ':' {
			return Term{}, fmt.Errorf("malformed blank node")
		}
		j := p.i + 2
		for j < len(p.s) && isBlankLabelChar(p.s[j]) {
			j++
		}
		if j == p.i+2 {
			return Term{}, fmt.Errorf("empty blank node label")
		}
		label := p.s[p.i+2 : j]
		p.i = j
		return NewBlank(label), nil
	case '"':
		return p.literal()
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.s[p.i])
	}
}

func (p *termScanner) literal() (Term, error) {
	j := p.i + 1
	for j < len(p.s) {
		if p.s[j] == '\\' {
			j += 2
			continue
		}
		if p.s[j] == '"' {
			break
		}
		j++
	}
	if j >= len(p.s) {
		return Term{}, fmt.Errorf("unterminated literal")
	}
	lex, err := UnescapeLiteral(p.s[p.i+1 : j])
	if err != nil {
		return Term{}, err
	}
	p.i = j + 1
	if p.i < len(p.s) && p.s[p.i] == '@' {
		k := p.i + 1
		for k < len(p.s) && isLangChar(p.s[k]) {
			k++
		}
		if k == p.i+1 {
			return Term{}, fmt.Errorf("empty language tag")
		}
		lang := p.s[p.i+1 : k]
		p.i = k
		return NewLangLiteral(lex, lang), nil
	}
	if strings.HasPrefix(p.s[p.i:], "^^<") {
		end := strings.IndexByte(p.s[p.i+2:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated datatype IRI")
		}
		dt := p.s[p.i+3 : p.i+2+end]
		p.i += 2 + end + 1
		return NewTypedLiteral(lex, dt), nil
	}
	return NewLiteral(lex), nil
}

func isBlankLabelChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.'
}

func isLangChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-'
}

// WriteNTriples serializes triples to w in N-Triples format.
func WriteNTriples(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if _, err := fmt.Fprintf(bw, "%s %s %s .\n", t.S, t.P, t.O); err != nil {
			return err
		}
	}
	return bw.Flush()
}
