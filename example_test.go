package rdfframes_test

import (
	"fmt"
	"log"

	"rdfframes"
	"rdfframes/internal/datagen"
	"rdfframes/internal/rdf"
	"rdfframes/internal/store"
)

// exampleClient builds a tiny in-process knowledge graph for the examples.
func exampleClient() rdfframes.Client {
	st := store.New()
	p := rdf.NewPrefixMap(datagen.DBpediaPrefixes())
	add := func(s, pred, o string) {
		st.Add("http://dbpedia.org", rdf.Triple{
			S: rdf.NewIRI(p.MustExpand(s)),
			P: rdf.NewIRI(p.MustExpand(pred)),
			O: rdf.NewIRI(p.MustExpand(o)),
		})
	}
	add("dbpr:Inception", "dbpp:starring", "dbpr:DiCaprio")
	add("dbpr:Titanic", "dbpp:starring", "dbpr:DiCaprio")
	add("dbpr:Amelie", "dbpp:starring", "dbpr:Tautou")
	add("dbpr:DiCaprio", "dbpp:birthPlace", "dbpr:United_States")
	add("dbpr:Tautou", "dbpp:birthPlace", "dbpr:France")
	return rdfframes.ConnectStore(st)
}

func exampleGraph() *rdfframes.KnowledgeGraph {
	return rdfframes.NewKnowledgeGraph("http://dbpedia.org", datagen.DBpediaPrefixes())
}

// A frame is a lazy description: ToSPARQL shows the single query the
// recorded operators compile to.
func ExampleRDFFrame_ToSPARQL() {
	graph := exampleGraph()
	frame := graph.FeatureDomainRange("dbpp:starring", "movie", "actor").
		GroupBy("actor").CountDistinct("movie", "n").
		Filter(rdfframes.Conds{"n": {">=2"}})
	query, err := frame.ToSPARQL()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(query)
	// Output:
	// PREFIX dbpo: <http://dbpedia.org/ontology/>
	// PREFIX dbpp: <http://dbpedia.org/property/>
	// PREFIX dbpr: <http://dbpedia.org/resource/>
	// PREFIX dcterms: <http://purl.org/dc/terms/>
	// PREFIX owl: <http://www.w3.org/2002/07/owl#>
	// PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
	// PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
	// PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
	// SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?n)
	// FROM <http://dbpedia.org>
	// WHERE {
	//   ?movie <http://dbpedia.org/property/starring> ?actor .
	// }
	// GROUP BY ?actor
	// HAVING ( COUNT(DISTINCT ?movie) >= 2 )
}

// Execute runs the compiled query and returns a DataFrame.
func ExampleRDFFrame_Execute() {
	frame := exampleGraph().
		FeatureDomainRange("dbpp:starring", "movie", "actor").
		Expand("actor", rdfframes.Out("dbpp:birthPlace", "country")).
		Filter(rdfframes.Conds{"country": {"=dbpr:United_States"}}).
		Sort(rdfframes.Asc("movie"))
	df, err := frame.Execute(exampleClient())
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < df.Len(); i++ {
		fmt.Println(df.Cell(i, "movie").Value)
	}
	// Output:
	// http://dbpedia.org/resource/Inception
	// http://dbpedia.org/resource/Titanic
}

// Frames branch freely: one shared prefix feeds a filter branch and a
// grouped branch, joined back together.
func ExampleRDFFrame_Join() {
	graph := exampleGraph()
	movies := graph.FeatureDomainRange("dbpp:starring", "movie", "actor").Cache()
	american := movies.
		Expand("actor", rdfframes.Out("dbpp:birthPlace", "country")).
		Filter(rdfframes.Conds{"country": {"=dbpr:United_States"}})
	counts := movies.GroupBy("actor").CountDistinct("movie", "n")
	df, err := american.Join(counts, "actor", rdfframes.InnerJoin).
		SelectCols("actor", "n").
		Execute(exampleClient())
	if err != nil {
		log.Fatal(err)
	}
	distinct := df.Distinct()
	for i := 0; i < distinct.Len(); i++ {
		n, _ := distinct.Cell(i, "n").AsInt()
		fmt.Printf("%s stars in %d movies\n", distinct.Cell(i, "actor").Value, n)
	}
	// Output:
	// http://dbpedia.org/resource/DiCaprio stars in 2 movies
}

// Exploration operators summarize an unfamiliar graph.
func ExampleKnowledgeGraph_PredicateDistribution() {
	df, err := exampleGraph().PredicateDistribution("pred", "uses").
		Execute(exampleClient())
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < df.Len(); i++ {
		n, _ := df.Cell(i, "uses").AsInt()
		fmt.Printf("%s: %d\n", df.Cell(i, "pred").Value, n)
	}
	// Output:
	// http://dbpedia.org/property/starring: 3
	// http://dbpedia.org/property/birthPlace: 2
}
