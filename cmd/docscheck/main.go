// Command docscheck validates the repository's markdown documentation:
// every repo-relative link must resolve to a file or directory that exists.
// CI runs it in the docs job (and the package's own test runs it under
// plain `go test ./...`), so a doc rename or a typoed path fails the build
// instead of shipping a dead link.
//
//	docscheck           # check the working tree
//	docscheck -root dir # check another checkout
//
// External links (http, https, mailto) and pure intra-page anchors are not
// checked — availability of other people's servers is not this repo's
// contract. A link with a fragment (README.md#section) is checked for the
// file only.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()
	problems, err := CheckLinks(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "docscheck: FAIL: %s\n", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Println("docscheck: all repo-relative markdown links resolve")
}

// skippedFiles are driver and provenance files for the repo-growth process,
// not product documentation: they quote external material whose link
// targets are not part of this repository's contract.
var skippedFiles = map[string]bool{
	"ISSUE.md":    true,
	"PAPER.md":    true,
	"PAPERS.md":   true,
	"SNIPPETS.md": true,
	"CHANGES.md":  true,
}

// linkPattern matches inline markdown links and images: [text](target).
var linkPattern = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// CheckLinks walks every .md file under root and returns one problem line
// per repo-relative link whose target does not exist. Fenced code blocks
// are ignored — they quote syntax, they don't link.
func CheckLinks(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") || skippedFiles[d.Name()] {
			return nil
		}
		ps, err := checkFile(root, path)
		if err != nil {
			return err
		}
		problems = append(problems, ps...)
		return nil
	})
	return problems, err
}

func checkFile(root, path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	rel, err := filepath.Rel(root, path)
	if err != nil {
		rel = path
	}
	var problems []string
	inFence := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if !checkable(target) {
				continue
			}
			// Drop the fragment; only the file's existence is checked.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // pure intra-page anchor
			}
			resolved := resolve(root, path, target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s:%d: link target %q does not exist", rel, lineNo, m[1]))
			}
		}
	}
	return problems, sc.Err()
}

// checkable reports whether a link target is a repo path rather than an
// external URL.
func checkable(target string) bool {
	if u, err := url.Parse(target); err == nil && u.Scheme != "" {
		return false
	}
	return true
}

// resolve maps a link target to a filesystem path: absolute targets
// (/docs/x.md) are repo-rooted, relative ones resolve against the linking
// file's directory.
func resolve(root, fromFile, target string) string {
	if strings.HasPrefix(target, "/") {
		return filepath.Join(root, target)
	}
	return filepath.Join(filepath.Dir(fromFile), target)
}
