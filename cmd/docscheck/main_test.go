package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The repository's own docs must pass the link check under plain
// `go test ./...` — CI's docs job runs the same function, but this keeps
// the contract enforced even for local runs that skip the workflow.
func TestRepositoryDocsLinksResolve(t *testing.T) {
	problems, err := CheckLinks(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestCheckLinksCatchesDeadLink(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "README.md")
	content := "[good](sub/ok.md)\n[dead](missing.md)\n```\n[quoted](also-missing.md)\n```\n[ext](https://example.com/x)\n"
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sub", "ok.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(md, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := CheckLinks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 {
		t.Fatalf("got %d problems, want exactly the dead link: %v", len(problems), problems)
	}
}

// repoRoot walks up from the working directory to the module root (the
// directory holding go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}
