// Command datagen writes the synthetic benchmark knowledge graphs as
// N-Triples files — and, optionally, as a single binary snapshot that
// rdfframes-server and benchrunner can reopen without re-parsing — for
// loading into rdfframes-server (or any RDF engine).
//
// Usage:
//
//	datagen -scale small -out ./data
//	datagen -scale bench -out ./data -graphs dbpedia,dblp
//	datagen -scale bench -out ./data -snapshot ./data/bench.snap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"rdfframes/internal/datagen"
	"rdfframes/internal/rdf"
	"rdfframes/internal/snapshot"
	"rdfframes/internal/store"
)

func main() {
	var (
		scale   = flag.String("scale", "small", `dataset scale: "small" or "bench"`)
		out     = flag.String("out", ".", "output directory")
		graphs  = flag.String("graphs", "dbpedia,dblp,yago", "comma-separated graphs to generate")
		snapOut = flag.String("snapshot", "", "also write every generated graph into one snapshot file at this path")
	)
	flag.Parse()

	dbpCfg, dblpCfg, yagoCfg := datagen.SmallDBpedia(), datagen.SmallDBLP(), datagen.SmallYAGO()
	if *scale == "bench" {
		dbpCfg, dblpCfg, yagoCfg = datagen.BenchDBpedia(), datagen.BenchDBLP(), datagen.BenchYAGO()
	} else if *scale != "small" {
		log.Fatalf("unknown scale %q", *scale)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	graphURIs := map[string]string{
		"dbpedia": datagen.DBpediaURI,
		"dblp":    datagen.DBLPURI,
		"yago":    datagen.YAGOURI,
	}
	st := store.New() // populated only when -snapshot is requested
	for _, g := range strings.Split(*graphs, ",") {
		g = strings.TrimSpace(g)
		var triples []rdf.Triple
		switch g {
		case "dbpedia":
			triples = datagen.DBpedia(dbpCfg)
		case "dblp":
			triples = datagen.DBLP(dblpCfg)
		case "yago":
			triples = datagen.YAGO(yagoCfg)
		default:
			log.Fatalf("unknown graph %q", g)
		}
		path := filepath.Join(*out, g+".nt")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := rdf.WriteNTriples(f, triples); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d triples to %s\n", len(triples), path)
		if *snapOut != "" {
			if err := st.AddAll(graphURIs[g], triples); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *snapOut != "" {
		if err := snapshot.WriteFile(*snapOut, st); err != nil {
			log.Fatal(err)
		}
		fi, err := os.Stat(*snapOut)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote snapshot of %d triples (%d bytes) to %s\n", st.Len(), fi.Size(), *snapOut)
	}
}
