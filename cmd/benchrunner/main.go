// Command benchrunner regenerates the paper's evaluation figures on the
// synthetic datasets and prints paper-style result tables:
//
//	Figure 3 — design decisions: naive generation vs navigation+dataframes
//	           vs RDFFrames on the three case studies,
//	Figure 4 — RDFFrames vs rdflib-style/SPARQL+dataframes/expert SPARQL,
//	Figure 5 — naive and RDFFrames ratios to expert SPARQL on Q1..Q15.
//
// Usage:
//
//	benchrunner                 # all figures, small scale
//	benchrunner -scale bench -fig 5 -timeout 60s
//	benchrunner -fig 5,storage,serving,parallel,planner -out BENCH_sparql.json
//	benchrunner -bestof 3       # keep the best of 3 runs per measurement
//	benchrunner -parallel 4     # intra-query morsel workers (1 = serial engine)
//	benchrunner -snapshot data.snap -fig 5   # reopen dataset from snapshot
//	benchrunner -data ./data -fig 5          # load dbpedia/dblp/yago .nt files
//	benchrunner -verify         # also verify result equality across approaches
//	benchrunner -digest out.txt # print per-query result digests and exit
//	benchrunner -explain        # print optimized EXPLAIN plans and exit
//	benchrunner -fig traffic -slowlog slow.jsonl -slowlog-threshold 50ms
//
// -fig serving runs the repeated-query serving workload: every Figure-5
// query issued over HTTP cold (no cache) and warm (plan + result caches),
// plus a full paginated client materialization, recording QPS and cache
// hit/miss counters.
//
// -fig parallel runs the morsel-parallelism workload: every Figure-5 query
// evaluated serially (Parallelism 1) and with -parallel workers, recording
// timings and result byte-identity.
//
// -fig planner runs the query-planner workload: every Figure-5 query
// evaluated with the greedy probe-memoized heuristic (DisableOptimizer)
// and with the cost-based planner, recording timings and result
// byte-identity.
//
// -fig traffic runs the multi-client load workload: an admission-controlled
// caching endpoint driven by a Zipfian Figure-5 mix through a closed-loop
// concurrency ramp and an open-loop overload stage, recording p50/p95/p99
// latencies, shed rates by reason, and the stampede-protection check
// (N concurrent cold requests, exactly one evaluation).
//
// -fig features runs the feature-pipeline workload: property-path queries
// (sequence and transitive closure) evaluated serially and with -parallel
// workers with the result byte-identity check, store-side topology-feature
// extraction over the actor node set, and the streaming CSV export with its
// bounded peak-buffer assertion.
//
// -fig mutations runs the write-path workload: batched SPARQL UPDATE
// requests through the engine with a WAL (fsync per batch), tombstone
// deletes and compaction, then a simulated crash — the mutated store is
// discarded and rebuilt from the pre-mutation snapshot plus a WAL replay —
// recording insert/delete/compact/recover timings and whether every
// Figure-5 query answers byte-identically on the recovered store.
//
// -digest evaluates the Figure-5 suite and writes one "task sha256" line
// per query (no timings). CI runs it twice — GOMAXPROCS=1 -parallel 1
// versus the parallel default — and diffs the files, so any parallel-eval
// nondeterminism fails the build.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rdfframes/internal/bench"
	"rdfframes/internal/datagen"
	"rdfframes/internal/obs"
	"rdfframes/internal/snapshot"
	"rdfframes/internal/store"
)

// servingWarmRequests is how many warm repeats of each query the serving
// workload averages over; enough to swamp per-request jitter without
// making the suite slow.
const servingWarmRequests = 30

// Traffic workload shapes per scale: stage duration, closed-loop client
// ramp, and stampede width. Small keeps the CI smoke fast; bench sustains
// each stage long enough for stable percentiles.
var (
	trafficSmallRamp = []int{1, 8, 32}
	trafficBenchRamp = []int{1, 8, 32, 128}
)

const (
	trafficSmallStage    = 200 * time.Millisecond
	trafficBenchStage    = time.Second
	trafficStampedeWidth = 16
)

func main() {
	var (
		scaleFlag = flag.String("scale", "small", `dataset scale: "small" or "bench"`)
		figFlag   = flag.String("fig", "3,4,5", `comma-separated figures to run ("3", "4", "5", "storage", "serving", "parallel", "planner", "traffic", "wcoj", "mutations", "features")`)
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-query timeout (the paper used 30 minutes)")
		bestOf    = flag.Int("bestof", 1, "rerun each measured phase N times and keep the best (use >=3 when regenerating committed numbers)")
		verify    = flag.Bool("verify", false, "verify all approaches return identical results first")
		out       = flag.String("out", "", "also write measurements as JSON to this file (e.g. BENCH_sparql.json)")
		snapPath  = flag.String("snapshot", "", "load the dataset from this snapshot file instead of generating it")
		dataDir   = flag.String("data", "", "load dbpedia.nt/dblp.nt/yago.nt from this directory instead of generating")
		parallel  = flag.Int("parallel", 4, "intra-query morsel workers for the engine and the parallel figure (0 = GOMAXPROCS, 1 = serial)")
		digest    = flag.String("digest", "", "write per-query Figure-5 result digests to this file and exit (for determinism checks)")
		explain   = flag.Bool("explain", false, "print the optimized EXPLAIN plan of every Figure-5 query and exit")
		slowPath  = flag.String("slowlog", "", "arm a slow-query log on the traffic figure's endpoint, appending JSON lines to this file (- = stderr, empty = off)")
		slowThr   = flag.Duration("slowlog-threshold", 100*time.Millisecond, "latency at or above which a traffic-figure query lands in -slowlog")
		noWCOJ    = flag.Bool("no-wcoj", false, "disable the worst-case-optimal join operator on the main engine (ablation; the wcoj figure builds its own engines)")
	)
	flag.Parse()

	scale := bench.ScaleSmall
	if *scaleFlag == "bench" {
		scale = bench.ScaleBench
	} else if *scaleFlag != "small" {
		log.Fatalf("unknown scale %q", *scaleFlag)
	}

	env, scaleName, err := buildEnv(scale, *scaleFlag, *snapPath, *dataDir)
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	env.Engine.Parallelism = *parallel
	env.Engine.DisableWCOJ = *noWCOJ

	if *digest != "" {
		if err := writeDigest(env, *digest); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *digest)
		return
	}
	if *explain {
		if err := printExplains(env); err != nil {
			log.Fatal(err)
		}
		return
	}
	for _, uri := range []string{datagen.DBpediaURI, datagen.DBLPURI, datagen.YAGOURI} {
		n := 0
		if g := env.Store.Graph(uri); g != nil {
			n = g.Len()
		}
		fmt.Fprintf(os.Stderr, "  <%s>: %d triples\n", uri, n)
	}

	if *verify {
		fmt.Fprintln(os.Stderr, "verifying result equality across approaches...")
		for _, task := range bench.CaseStudies() {
			approaches := []bench.Approach{bench.Naive, bench.Expert, bench.NavPandas, bench.SPARQLPandas, bench.ScanPandas}
			if err := bench.VerifyTask(env, task, approaches); err != nil {
				log.Fatal(err)
			}
		}
		for _, task := range bench.Synthetic() {
			if err := bench.VerifyTask(env, task, []bench.Approach{bench.Naive, bench.Expert}); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Fprintln(os.Stderr, "all approaches agree on all tasks")
	}

	slowLog, slowClose, err := openSlowLog(*slowPath, *slowThr)
	if err != nil {
		log.Fatal(err)
	}
	defer slowClose()

	report := &bench.JSONReport{Scale: scaleName, BestOf: *bestOf}
	for _, fig := range strings.Split(*figFlag, ",") {
		// Snapshot the environment registry around every figure so the
		// report attributes counter movement (cache hits, evaluations, HTTP
		// outcomes) to the workload that caused it. Workloads that build
		// their own endpoint leave the environment's counters still; their
		// delta is empty and the report omits it.
		metricsBefore := env.SnapshotMetrics()
		switch strings.TrimSpace(fig) {
		case "storage":
			fmt.Fprintln(os.Stderr, "measuring storage lifecycle (parse vs snapshot reopen)...")
			rep, err := bench.MeasureStorage(env, "")
			if err != nil {
				log.Fatal(err)
			}
			report.Storage = rep
			fmt.Println(bench.FormatStorage(rep))
		case "serving":
			fmt.Fprintln(os.Stderr, "measuring serving layer (repeated queries, cold vs warm cache)...")
			rep, err := bench.MeasureServing(env, servingWarmRequests, *bestOf, *timeout)
			if err != nil {
				log.Fatal(err)
			}
			report.Serving = rep
			fmt.Println(bench.FormatServing(rep))
		case "parallel":
			fmt.Fprintln(os.Stderr, "measuring parallel execution (serial vs morsel workers)...")
			rep, err := bench.MeasureParallel(env, *parallel, *bestOf, *timeout)
			if err != nil {
				log.Fatal(err)
			}
			report.Parallel = rep
			fmt.Println(bench.FormatParallel(rep))
		case "planner":
			fmt.Fprintln(os.Stderr, "measuring query planner (greedy heuristic vs cost-based ordering)...")
			rep, err := bench.MeasurePlanner(env, *bestOf, *timeout)
			if err != nil {
				log.Fatal(err)
			}
			report.Planner = rep
			fmt.Println(bench.FormatPlanner(rep))
		case "traffic":
			fmt.Fprintln(os.Stderr, "measuring serving under load (admission control, shedding, stampedes)...")
			stage, ramp := trafficSmallStage, trafficSmallRamp
			if scale == bench.ScaleBench {
				stage, ramp = trafficBenchStage, trafficBenchRamp
			}
			rep, err := bench.MeasureTraffic(env, stage, ramp, trafficStampedeWidth, *timeout, slowLog)
			if err != nil {
				log.Fatal(err)
			}
			report.Traffic = rep
			fmt.Println(bench.FormatTraffic(rep))
		case "wcoj":
			fmt.Fprintln(os.Stderr, "measuring worst-case-optimal joins (binary pipeline vs leapfrog triejoin)...")
			rep, err := bench.MeasureWCOJ(env, *bestOf, *timeout)
			if err != nil {
				log.Fatal(err)
			}
			report.Wcoj = rep
			fmt.Println(bench.FormatWCOJ(rep))
		case "features":
			fmt.Fprintln(os.Stderr, "measuring feature pipeline (property paths, topology features, streaming export)...")
			rep, err := bench.MeasureFeatures(env, *parallel, *bestOf, *timeout)
			if err != nil {
				log.Fatal(err)
			}
			report.Features = rep
			fmt.Println(bench.FormatFeatures(rep))
		case "mutations":
			fmt.Fprintln(os.Stderr, "measuring mutations (SPARQL UPDATE, WAL durability, crash recovery)...")
			rep, err := bench.MeasureMutations(env, "")
			if err != nil {
				log.Fatal(err)
			}
			report.Mutations = rep
			fmt.Println(bench.FormatMutations(rep))
		case "3":
			rows := bench.RunFigure3(env, *timeout, *bestOf)
			report.Add("3", rows)
			fmt.Println(bench.FormatFigure(
				"Figure 3: evaluating the design of RDFFrames (case studies, seconds)",
				rows, []bench.Approach{bench.Naive, bench.NavPandas, bench.RDFFrames}))
		case "4":
			rows := bench.RunFigure4(env, *timeout, *bestOf)
			report.Add("4", rows)
			fmt.Println(bench.FormatFigure(
				"Figure 4: comparing RDFFrames to alternative baselines (case studies, seconds)",
				rows, []bench.Approach{bench.ScanPandas, bench.SPARQLPandas, bench.Expert, bench.RDFFrames}))
		case "5":
			rows := bench.RunFigure5(env, *timeout, *bestOf)
			report.Add("5", rows)
			fmt.Println(bench.FormatFigure5(rows))
		default:
			log.Fatalf("unknown figure %q", fig)
		}
		report.AddMetricsDelta(strings.TrimSpace(fig), metricsBefore, env.SnapshotMetrics())
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.Write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

// writeDigest evaluates every Figure-5 query directly on the environment's
// engine (at its configured Parallelism) and writes "task sha256-of-json"
// lines. The dataset generators are seeded and the evaluator is
// deterministic, so two runs over the same scale must produce identical
// files — the property the CI determinism job diffs across GOMAXPROCS and
// -parallel settings.
func writeDigest(env *bench.Env, path string) error {
	var sb strings.Builder
	for _, task := range bench.Synthetic() {
		query, err := task.Frame(env).ToSPARQL()
		if err != nil {
			return fmt.Errorf("digest %s: %w", task.ID, err)
		}
		res, err := env.Engine.Query(query)
		if err != nil {
			return fmt.Errorf("digest %s: %w", task.ID, err)
		}
		body, err := res.MarshalJSON()
		if err != nil {
			return fmt.Errorf("digest %s: %w", task.ID, err)
		}
		fmt.Fprintf(&sb, "%s %x %d\n", task.ID, sha256.Sum256(body), len(res.Rows))
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// printExplains prints the optimized EXPLAIN plan (estimated vs actual
// cardinalities) of every Figure-5 query.
func printExplains(env *bench.Env) error {
	for _, task := range bench.Synthetic() {
		query, err := task.Frame(env).ToSPARQL()
		if err != nil {
			return fmt.Errorf("explain %s: %w", task.ID, err)
		}
		rep, err := env.Engine.Explain(query)
		if err != nil {
			return fmt.Errorf("explain %s: %w", task.ID, err)
		}
		fmt.Printf("== %s (%s)\n%s\n", task.ID, task.Name, rep.Text())
	}
	return nil
}

// openSlowLog resolves the -slowlog flag: empty disables, "-" writes to
// stderr, anything else appends JSON lines to the named file. The returned
// closer is a no-op unless a file was opened.
func openSlowLog(path string, threshold time.Duration) (*obs.SlowLog, func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	if path == "-" {
		return obs.NewSlowLog(os.Stderr, threshold), func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("opening slow-query log %s: %w", path, err)
	}
	return obs.NewSlowLog(f, threshold), func() { f.Close() }, nil
}

// buildEnv sets up the benchmark environment from one of three sources: a
// binary snapshot, a directory of N-Triples dumps, or freshly generated
// synthetic data. The returned name labels the dataset in the JSON report.
func buildEnv(scale bench.Scale, scaleName, snapPath, dataDir string) (*bench.Env, string, error) {
	switch {
	case snapPath != "":
		fmt.Fprintf(os.Stderr, "reopening dataset from snapshot %s...\n", snapPath)
		start := time.Now()
		st, err := snapshot.ReadFile(snapPath)
		if err != nil {
			return nil, "", err
		}
		fmt.Fprintf(os.Stderr, "  %d triples in %v\n", st.Len(), time.Since(start))
		env, err := bench.NewEnvFromStore(st)
		return env, "snapshot:" + filepath.Base(snapPath), err
	case dataDir != "":
		fmt.Fprintf(os.Stderr, "loading N-Triples dumps from %s...\n", dataDir)
		st := store.New()
		// Fixed load order: graph and dictionary-id assignment must be
		// deterministic so repeated runs (and snapshots written from this
		// store) are reproducible.
		for _, g := range []struct{ name, uri string }{
			{"dbpedia", datagen.DBpediaURI}, {"dblp", datagen.DBLPURI}, {"yago", datagen.YAGOURI},
		} {
			name, uri := g.name, g.uri
			path := filepath.Join(dataDir, name+".nt")
			f, err := os.Open(path)
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				return nil, "", err
			}
			n, err := st.LoadNTriplesParallel(uri, f, 0)
			f.Close()
			if err != nil {
				return nil, "", fmt.Errorf("loading %s: %w", path, err)
			}
			fmt.Fprintf(os.Stderr, "  %s: %d triples\n", path, n)
		}
		if st.Len() == 0 {
			return nil, "", fmt.Errorf("no dbpedia.nt/dblp.nt/yago.nt found in %s", dataDir)
		}
		env, err := bench.NewEnvFromStore(st)
		return env, "data:" + dataDir, err
	default:
		fmt.Fprintf(os.Stderr, "generating datasets (%s scale)...\n", scaleName)
		env, err := bench.NewEnv(scale)
		return env, scaleName, err
	}
}
