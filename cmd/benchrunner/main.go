// Command benchrunner regenerates the paper's evaluation figures on the
// synthetic datasets and prints paper-style result tables:
//
//	Figure 3 — design decisions: naive generation vs navigation+dataframes
//	           vs RDFFrames on the three case studies,
//	Figure 4 — RDFFrames vs rdflib-style/SPARQL+dataframes/expert SPARQL,
//	Figure 5 — naive and RDFFrames ratios to expert SPARQL on Q1..Q15.
//
// Usage:
//
//	benchrunner                 # all figures, small scale
//	benchrunner -scale bench -fig 5 -timeout 60s
//	benchrunner -verify         # also verify result equality across approaches
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"rdfframes/internal/bench"
	"rdfframes/internal/datagen"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "small", `dataset scale: "small" or "bench"`)
		figFlag   = flag.String("fig", "3,4,5", "comma-separated figures to run")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-query timeout (the paper used 30 minutes)")
		verify    = flag.Bool("verify", false, "verify all approaches return identical results first")
		out       = flag.String("out", "", "also write measurements as JSON to this file (e.g. BENCH_sparql.json)")
	)
	flag.Parse()

	scale := bench.ScaleSmall
	if *scaleFlag == "bench" {
		scale = bench.ScaleBench
	} else if *scaleFlag != "small" {
		log.Fatalf("unknown scale %q", *scaleFlag)
	}

	fmt.Fprintf(os.Stderr, "generating datasets (%s scale)...\n", *scaleFlag)
	env, err := bench.NewEnv(scale)
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	for _, uri := range []string{datagen.DBpediaURI, datagen.DBLPURI, datagen.YAGOURI} {
		fmt.Fprintf(os.Stderr, "  <%s>: %d triples\n", uri, env.Store.Graph(uri).Len())
	}

	if *verify {
		fmt.Fprintln(os.Stderr, "verifying result equality across approaches...")
		for _, task := range bench.CaseStudies() {
			approaches := []bench.Approach{bench.Naive, bench.Expert, bench.NavPandas, bench.SPARQLPandas, bench.ScanPandas}
			if err := bench.VerifyTask(env, task, approaches); err != nil {
				log.Fatal(err)
			}
		}
		for _, task := range bench.Synthetic() {
			if err := bench.VerifyTask(env, task, []bench.Approach{bench.Naive, bench.Expert}); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Fprintln(os.Stderr, "all approaches agree on all tasks")
	}

	report := &bench.JSONReport{Scale: *scaleFlag}
	for _, fig := range strings.Split(*figFlag, ",") {
		switch strings.TrimSpace(fig) {
		case "3":
			rows := bench.RunFigure3(env, *timeout)
			report.Add("3", rows)
			fmt.Println(bench.FormatFigure(
				"Figure 3: evaluating the design of RDFFrames (case studies, seconds)",
				rows, []bench.Approach{bench.Naive, bench.NavPandas, bench.RDFFrames}))
		case "4":
			rows := bench.RunFigure4(env, *timeout)
			report.Add("4", rows)
			fmt.Println(bench.FormatFigure(
				"Figure 4: comparing RDFFrames to alternative baselines (case studies, seconds)",
				rows, []bench.Approach{bench.ScanPandas, bench.SPARQLPandas, bench.Expert, bench.RDFFrames}))
		case "5":
			rows := bench.RunFigure5(env, *timeout)
			report.Add("5", rows)
			fmt.Println(bench.FormatFigure5(rows))
		default:
			log.Fatalf("unknown figure %q", fig)
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.Write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}
