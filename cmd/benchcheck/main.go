// Command benchcheck diffs a fresh benchrunner report against the
// committed BENCH_sparql.json shape-wise, so CI catches structural
// regressions in the benchmark harness without asserting on timings
// (the bench boxes are shared single cores; wall-clock deltas are noise).
//
//	benchcheck -committed BENCH_sparql.json -fresh /tmp/bench-smoke.json
//	benchcheck -fresh out.json -strict -sections 5,serving,parallel,planner
//
// Structural checks (exit 1 on failure):
//   - both reports parse and the fresh one has measurements,
//   - every figure the two reports share covers the committed
//     (task, approach) pairs,
//   - no fresh measurement has an empty timing (zero seconds without an
//     error) and none reports an error,
//   - result byte-identity flags recorded by the serving, parallel,
//     planner, wcoj, mutations, and features sections are all true (a false
//     one is a determinism, planner-correctness, or crash-recovery
//     regression),
//   - the features section's streaming export stayed within its bounded
//     buffer (an unbounded peak means the export materialized the frame),
//   - the traffic section upholds the load-shedding contract: Retry-After
//     on every shed, zero unexpected errors or identity violations, and a
//     stampede coalesced into exactly one evaluation,
//   - sections present in the fresh report are non-degenerate.
//
// -strict additionally requires every section named by -sections (figure
// numbers and/or "storage", "serving", "parallel", "planner", "traffic",
// "wcoj", "mutations", "features") to be present in the fresh report — a
// missing section means the harness silently dropped a workload and is a
// hard failure.
//
// -metrics switches benchcheck into a second mode: instead of diffing
// reports it validates a scraped Prometheus /metrics text file (exit 1 on
// failure):
//
//	benchcheck -metrics /tmp/metrics.prom
//
// The file must parse as text exposition format, contain every required
// rdfframes metric family (engine, serving layer, and Go runtime), and
// have no NaN or negative cumulative values — the invariants a scrape of a
// healthy server upholds by construction, so a violation means the
// observability wiring regressed.
//
// Timing deltas between the reports are always printed as warnings only:
// the bench boxes are shared single cores, and wall-clock noise is not a
// regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"rdfframes/internal/bench"
	"rdfframes/internal/obs"
)

func main() {
	committedPath := flag.String("committed", "BENCH_sparql.json", "committed reference report")
	freshPath := flag.String("fresh", "", "freshly generated report to check")
	warnRatio := flag.Float64("warn-ratio", 3, "warn when a shared measurement's timing ratio exceeds this (either direction)")
	strict := flag.Bool("strict", false, "missing -sections entries become hard failures")
	sections := flag.String("sections", "", "comma-separated sections the fresh report must contain under -strict (e.g. 5,serving,parallel,planner,wcoj,mutations)")
	metricsPath := flag.String("metrics", "", "validate a scraped Prometheus /metrics text file instead of diffing reports")
	flag.Parse()

	if *metricsPath != "" {
		problems, err := checkMetricsFile(*metricsPath)
		if err != nil {
			fail("reading metrics file: %v", err)
		}
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "benchcheck: FAIL: %s\n", p)
			}
			os.Exit(1)
		}
		fmt.Println("benchcheck: metrics scrape is structurally sound")
		return
	}

	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -fresh is required")
		os.Exit(2)
	}

	committed, err := readReport(*committedPath)
	if err != nil {
		fail("reading committed report: %v", err)
	}
	fresh, err := readReport(*freshPath)
	if err != nil {
		fail("reading fresh report: %v", err)
	}

	problems := check(committed, fresh, *warnRatio)
	if *strict {
		problems = append(problems, checkSections(fresh, *sections)...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Println("benchcheck: fresh report is structurally sound")
}

// checkSections enforces -strict section presence: every named section must
// exist (and figures must have at least one measurement) in the fresh
// report.
func checkSections(fresh *bench.JSONReport, sections string) []string {
	if sections == "" {
		return nil
	}
	figures := map[string]bool{}
	for _, m := range fresh.Measurements {
		figures[m.Figure] = true
	}
	var problems []string
	for _, s := range strings.Split(sections, ",") {
		s = strings.TrimSpace(s)
		missing := false
		switch s {
		case "":
			continue
		case "storage":
			missing = fresh.Storage == nil
		case "serving":
			missing = fresh.Serving == nil
		case "parallel":
			missing = fresh.Parallel == nil
		case "planner":
			missing = fresh.Planner == nil
		case "traffic":
			missing = fresh.Traffic == nil
		case "wcoj":
			missing = fresh.Wcoj == nil
		case "mutations":
			missing = fresh.Mutations == nil
		case "features":
			missing = fresh.Features == nil
		default:
			missing = !figures[s]
		}
		if missing {
			problems = append(problems, fmt.Sprintf("required section %q missing from fresh report", s))
		}
	}
	return problems
}

// requiredMetricFamilies is the contract a scrape of a healthy server must
// cover: the engine's counters and gauges, the serving-layer instruments,
// and the Go runtime gauges. All are registered unconditionally by
// EnableMetrics/RegisterRuntimeMetrics, so a missing family means the
// wiring regressed, not that the feature was off.
var requiredMetricFamilies = []string{
	// engine
	"rdfframes_cache_hits_total",
	"rdfframes_cache_misses_total",
	"rdfframes_cache_evictions_total",
	"rdfframes_cache_entries",
	"rdfframes_cache_cost",
	"rdfframes_cache_budget",
	"rdfframes_cache_enabled",
	"rdfframes_singleflight_total",
	"rdfframes_evaluations_total",
	"rdfframes_wcoj_segments_total",
	"rdfframes_wcoj_seeks_total",
	"rdfframes_wcoj_backtracks_total",
	"rdfframes_wcoj_fallbacks_total",
	"rdfframes_store_version",
	"rdfframes_stats_epoch",
	"rdfframes_store_triples",
	"rdfframes_store_graphs",
	"rdfframes_parallelism",
	// serving layer
	"rdfframes_query_seconds",
	"rdfframes_query_task_seconds",
	"rdfframes_http_requests_total",
	"rdfframes_traces_total",
	"rdfframes_admission_shed_total",
	"rdfframes_admitted_total",
	"rdfframes_in_flight",
	"rdfframes_draining",
	"rdfframes_max_in_flight",
	"rdfframes_max_query_cost",
	"rdfframes_slowlog_entries_total",
	"rdfframes_slowlog_dropped_total",
	// runtime
	"rdfframes_goroutines",
	"rdfframes_gomaxprocs",
	"rdfframes_heap_alloc_bytes",
	"rdfframes_heap_sys_bytes",
	"rdfframes_heap_objects",
	"rdfframes_gc_runs_total",
	"rdfframes_gc_pause_seconds_total",
	"rdfframes_alloc_bytes_total",
}

// checkMetricsFile validates a scraped /metrics text file: it must parse,
// cover every required family, and contain no NaN, infinite, or negative
// cumulative values.
func checkMetricsFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples, types, err := obs.ParseText(f)
	if err != nil {
		return nil, err
	}

	var problems []string
	if len(samples) == 0 {
		problems = append(problems, "metrics file has no samples")
	}
	for _, fam := range requiredMetricFamilies {
		if _, ok := types[fam]; !ok {
			problems = append(problems, fmt.Sprintf("required metric family %s missing", fam))
		}
	}
	for name, v := range samples {
		if math.IsNaN(v) {
			problems = append(problems, fmt.Sprintf("%s is NaN", name))
			continue
		}
		if math.IsInf(v, 0) {
			problems = append(problems, fmt.Sprintf("%s is infinite", name))
			continue
		}
		switch types[obs.FamilyOf(name)] {
		case obs.TypeCounter, obs.TypeHistogram:
			if v < 0 {
				problems = append(problems, fmt.Sprintf("cumulative series %s is negative (%g)", name, v))
			}
		}
	}
	sort.Strings(problems) // map iteration order must not leak into output
	return problems, nil
}

func readReport(path string) (*bench.JSONReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.JSONReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// check returns the structural problems of fresh relative to committed.
func check(committed, fresh *bench.JSONReport, warnRatio float64) []string {
	var problems []string
	if len(fresh.Measurements) == 0 {
		problems = append(problems, "fresh report has no measurements")
	}

	type key struct{ figure, task, approach string }
	freshSeconds := map[key]float64{}
	freshFigures := map[string]bool{}
	for _, m := range fresh.Measurements {
		k := key{m.Figure, m.Task, m.Approach}
		freshSeconds[k] = m.Seconds
		freshFigures[m.Figure] = true
		if m.Error != "" {
			problems = append(problems, fmt.Sprintf("figure %s %s (%s) errored: %s", m.Figure, m.Task, m.Approach, m.Error))
		} else if m.Seconds <= 0 {
			problems = append(problems, fmt.Sprintf("figure %s %s (%s) has an empty timing", m.Figure, m.Task, m.Approach))
		}
	}
	// Coverage: every (task, approach) the committed report has for a
	// figure the fresh report also ran must be present — a missing query
	// means the harness silently dropped work.
	for _, m := range committed.Measurements {
		if !freshFigures[m.Figure] {
			continue
		}
		k := key{m.Figure, m.Task, m.Approach}
		secs, ok := freshSeconds[k]
		if !ok {
			problems = append(problems, fmt.Sprintf("figure %s lost %s (%s)", m.Figure, m.Task, m.Approach))
			continue
		}
		if m.Seconds > 0 && secs > 0 {
			ratio := secs / m.Seconds
			if ratio > warnRatio || ratio < 1/warnRatio {
				fmt.Fprintf(os.Stderr, "benchcheck: warn: figure %s %s (%s): %.4fs vs committed %.4fs (%.1fx) — timing only, not failing\n",
					m.Figure, m.Task, m.Approach, secs, m.Seconds, ratio)
			}
		}
	}

	if committed.Serving != nil && fresh.Serving != nil {
		if len(fresh.Serving.Queries) < len(committed.Serving.Queries) {
			problems = append(problems, fmt.Sprintf("serving section shrank: %d queries, committed has %d",
				len(fresh.Serving.Queries), len(committed.Serving.Queries)))
		}
		for _, q := range fresh.Serving.Queries {
			if !q.ByteIdentical {
				problems = append(problems, fmt.Sprintf("serving %s: cached response not byte-identical", q.Task))
			}
			if q.ColdSeconds <= 0 || q.WarmSeconds <= 0 {
				problems = append(problems, fmt.Sprintf("serving %s has an empty timing", q.Task))
			}
		}
	}
	if fresh.Parallel != nil {
		if len(fresh.Parallel.Queries) == 0 {
			problems = append(problems, "parallel section has no queries")
		}
		for _, q := range fresh.Parallel.Queries {
			if !q.ByteIdentical {
				problems = append(problems, fmt.Sprintf("parallel %s: parallel result not byte-identical to serial", q.Task))
			}
			if q.SerialSeconds <= 0 || q.ParallelSeconds <= 0 {
				problems = append(problems, fmt.Sprintf("parallel %s has an empty timing", q.Task))
			}
		}
	}
	if fresh.Planner != nil {
		if len(fresh.Planner.Queries) == 0 {
			problems = append(problems, "planner section has no queries")
		}
		for _, q := range fresh.Planner.Queries {
			if !q.ByteIdentical {
				problems = append(problems, fmt.Sprintf("planner %s: optimized result not byte-identical to heuristic", q.Task))
			}
			if q.HeuristicSeconds <= 0 || q.OptimizedSeconds <= 0 {
				problems = append(problems, fmt.Sprintf("planner %s has an empty timing", q.Task))
			}
		}
	}
	if fresh.Wcoj != nil {
		if len(fresh.Wcoj.Queries) == 0 {
			problems = append(problems, "wcoj section has no queries")
		}
		if fresh.Wcoj.ChosenQueries == 0 {
			problems = append(problems, "wcoj: cost model chose the operator for no query — the section measures nothing")
		}
		for _, q := range fresh.Wcoj.Queries {
			if !q.ByteIdentical {
				problems = append(problems, fmt.Sprintf("wcoj %s: result not byte-identical to the binary pipeline", q.Task))
			}
			if q.BinarySeconds <= 0 || q.WCOJSeconds <= 0 {
				problems = append(problems, fmt.Sprintf("wcoj %s has an empty timing", q.Task))
			}
			if q.Chosen && q.Seeks == 0 {
				problems = append(problems, fmt.Sprintf("wcoj %s: chosen but recorded no iterator seeks", q.Task))
			}
		}
	}
	if f := fresh.Features; f != nil {
		if len(f.PathQueries) == 0 {
			problems = append(problems, "features section has no path queries")
		}
		for _, q := range f.PathQueries {
			if !q.ByteIdentical {
				problems = append(problems, fmt.Sprintf("features %s: parallel path result not byte-identical to serial", q.Task))
			}
			if q.SerialSeconds <= 0 || q.ParallelSeconds <= 0 {
				problems = append(problems, fmt.Sprintf("features %s has an empty timing", q.Task))
			}
			if q.Rows == 0 {
				problems = append(problems, fmt.Sprintf("features %s returned no rows — the path matched nothing", q.Task))
			}
		}
		if f.FeatureNodes == 0 {
			problems = append(problems, "features: no nodes featurized — the extraction measured nothing")
		}
		if f.FeatureSeconds <= 0 || f.ExportSeconds <= 0 {
			problems = append(problems, "features section has an empty timing")
		}
		if f.ExportRows == 0 || f.ExportBytes == 0 {
			problems = append(problems, "features: export streamed nothing")
		}
		if !f.ExportBounded {
			problems = append(problems, fmt.Sprintf("features: export peak buffer %d exceeded the bound for %d-byte chunks — the stream materialized",
				f.ExportPeakBufferBytes, f.ExportChunkBytes))
		}
	}
	if m := fresh.Mutations; m != nil {
		if m.Inserted == 0 || m.Deleted == 0 {
			problems = append(problems, fmt.Sprintf("mutations: workload changed nothing (%d inserted, %d deleted)", m.Inserted, m.Deleted))
		}
		if m.InsertSeconds <= 0 || m.DeleteSeconds <= 0 || m.RecoverSeconds <= 0 {
			problems = append(problems, "mutations section has an empty timing")
		}
		if m.ReplayBatches == 0 {
			problems = append(problems, "mutations: recovery replayed no WAL batches — the crash path measured nothing")
		}
		if !m.ByteIdentical {
			problems = append(problems, "mutations: figure-5 results after crash recovery not byte-identical")
		}
	}
	if committed.Storage != nil && fresh.Storage != nil {
		if fresh.Storage.ReopenSeconds <= 0 {
			problems = append(problems, "storage section has an empty reopen timing")
		}
	}
	if t := fresh.Traffic; t != nil {
		if len(t.Stages) == 0 {
			problems = append(problems, "traffic section has no stages")
		}
		var totalShed uint64
		for i, st := range t.Stages {
			if st.Requests == 0 || st.OK == 0 {
				problems = append(problems, fmt.Sprintf("traffic stage %d is empty (%d requests, %d ok)", i, st.Requests, st.OK))
			}
			if st.P50 <= 0 || st.P50 > st.P95 || st.P95 > st.P99 {
				problems = append(problems, fmt.Sprintf("traffic stage %d has broken percentiles (p50=%v p95=%v p99=%v)", i, st.P50, st.P95, st.P99))
			}
			totalShed += st.Shed
		}
		if totalShed == 0 {
			problems = append(problems, "traffic: no request was ever shed — admission gates never engaged")
		}
		if !t.RetryAfterAlways {
			problems = append(problems, "traffic: some shed response lacked Retry-After")
		}
		if t.UnexpectedErrors != 0 {
			problems = append(problems, fmt.Sprintf("traffic: %d unexpected errors (non-200/429/503 or transport failures)", t.UnexpectedErrors))
		}
		if t.IdentityViolations != 0 {
			problems = append(problems, fmt.Sprintf("traffic: %d responses diverged from their reference bodies", t.IdentityViolations))
		}
		if t.Stampede.Evaluations != 1 {
			problems = append(problems, fmt.Sprintf("traffic: stampede cost %d evaluations, want exactly 1", t.Stampede.Evaluations))
		}
		if !t.Stampede.ByteIdentical {
			problems = append(problems, "traffic: stampede responses diverged")
		}
	}
	return problems
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
