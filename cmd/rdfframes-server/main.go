// Command rdfframes-server serves a SPARQL endpoint over an RDF dataset:
// a binary snapshot reopened from disk, N-Triples files loaded (in
// parallel) from disk, or the built-in synthetic benchmark datasets. It is
// the stand-in for the RDF engine (Virtuoso) in the paper's experimental
// setup.
//
// Usage:
//
//	rdfframes-server -listen :8080 -synthetic small
//	rdfframes-server -listen :8080 -load http://g1=dump1.nt -load http://g2=dump2.nt
//	rdfframes-server -listen :8080 -snapshot data.snap
//	rdfframes-server -load http://g1=dump1.nt -write-snapshot data.snap ...
//	rdfframes-server -maxrows 10000 -timeout 30s ...
//	rdfframes-server -max-inflight 64 -max-cost 1e7 -drain 30s ...
//	rdfframes-server -debug-addr :6060 -slowlog slow.jsonl -slowlog-threshold 100ms ...
//	rdfframes-server -synthetic small -wal updates.wal ...
//
// Observability: /metrics (Prometheus text) and /stats (JSON) render the
// same counters; ?trace=1 on /sparql returns a per-stage trace annex;
// -slowlog records queries over -slowlog-threshold as JSON lines; and
// -debug-addr starts a separate listener with net/http/pprof, /metrics,
// and /stats for operators.
//
// -snapshot opens a store persisted by -write-snapshot (or by datagen
// -snapshot) in milliseconds instead of re-parsing text; combine
// -load with -write-snapshot once to convert a text dataset.
//
// -wal makes SPARQL UPDATE (/v1/update) durable: every committed batch is
// fsync'd to the log before it applies, and at boot the log's committed
// tail is replayed over the loaded dataset — a kill -9 after an
// unsnapshotted update loses nothing. Combining -wal with -write-snapshot
// folds the replayed state into the snapshot and truncates the log.
//
// The server sheds load instead of falling over: -max-inflight bounds
// concurrently evaluating queries and -max-cost sheds queries whose
// planner cost estimate exceeds the budget, both answering 429 with
// Retry-After. On SIGINT/SIGTERM it drains gracefully — new queries get
// 503 + Retry-After while in-flight ones finish (up to -drain) — and
// exits 0 after a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rdfframes/internal/datagen"
	"rdfframes/internal/obs"
	"rdfframes/internal/server"
	"rdfframes/internal/snapshot"
	"rdfframes/internal/sparql"
	"rdfframes/internal/store"
)

type loadFlags []string

func (l *loadFlags) String() string     { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	var (
		listen    = flag.String("listen", ":8080", "address to serve on")
		synthetic = flag.String("synthetic", "", `generate synthetic datasets instead of loading: "small" or "bench"`)
		snapIn    = flag.String("snapshot", "", "open the store from this snapshot file (fast cold start)")
		snapOut   = flag.String("write-snapshot", "", "after loading, persist the store to this snapshot file")
		maxRows   = flag.Int("maxrows", 0, "cap rows per response (0 = unlimited); clients must paginate past it")
		maxBody   = flag.Int64("maxbody", 0, "cap POST body bytes (0 = 1 MiB default); oversized queries get 413")
		timeout   = flag.Duration("timeout", time.Minute, "per-query evaluation deadline (0 = none)")
		cacheOn   = flag.Bool("cache", true, "enable the serving caches (parsed plans + store-versioned results with pagination-aware slicing)")
		cacheRows = flag.Int64("cache-rows", sparql.DefaultResultCacheRows, "result cache budget in total cached rows (roughly 64 MB at the default); 0 caches plans only")
		parallel  = flag.Int("parallel", 0, "intra-query morsel workers per query (0 = GOMAXPROCS, 1 = serial); results are identical at every setting")
		inflight  = flag.Int("max-inflight", 0, "max concurrently evaluating queries (0 = unlimited); excess requests are shed with 429 + Retry-After")
		maxCost   = flag.Float64("max-cost", 0, "per-query planner cost budget in estimated intermediate rows (0 = unlimited); pricier queries are shed with 429")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight queries on SIGINT/SIGTERM")
		debugAddr = flag.String("debug-addr", "", "separate listener for operator surfaces: net/http/pprof plus /metrics and /stats (empty = off)")
		slowLog   = flag.String("slowlog", "", "append slow queries as JSON lines to this file (- = stderr, empty = off)")
		slowThr   = flag.Duration("slowlog-threshold", 250*time.Millisecond, "latency at or above which a query lands in -slowlog")
		noWCOJ    = flag.Bool("no-wcoj", false, "disable the worst-case-optimal join operator; every BGP runs the binary join pipeline")
		walPath   = flag.String("wal", "", "write-ahead log file for SPARQL UPDATE durability; replayed over the loaded dataset at boot (empty = updates are in-memory only)")
		loads     loadFlags
	)
	flag.Var(&loads, "load", "graphURI=file.nt pair to load (repeatable)")
	flag.Parse()

	st := store.New()
	if *snapIn != "" {
		start := time.Now()
		var err error
		st, err = snapshot.ReadFile(*snapIn)
		if err != nil {
			log.Fatalf("opening snapshot %s: %v", *snapIn, err)
		}
		log.Printf("reopened %d triples from %s in %v", st.Len(), *snapIn, time.Since(start))
	}
	switch *synthetic {
	case "small":
		mustLoadSynthetic(st, datagen.SmallDBpedia(), datagen.SmallDBLP(), datagen.SmallYAGO())
	case "bench":
		mustLoadSynthetic(st, datagen.BenchDBpedia(), datagen.BenchDBLP(), datagen.BenchYAGO())
	case "":
		if len(loads) == 0 && *snapIn == "" {
			fmt.Fprintln(os.Stderr, "nothing to serve: pass -synthetic small|bench, -snapshot file.snap, or -load graph=file.nt")
			os.Exit(2)
		}
	default:
		log.Fatalf("unknown -synthetic value %q", *synthetic)
	}
	for _, spec := range loads {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("bad -load %q, want graphURI=file.nt", spec)
		}
		f, err := os.Open(parts[1])
		if err != nil {
			log.Fatalf("opening %s: %v", parts[1], err)
		}
		start := time.Now()
		var n int
		if strings.HasSuffix(parts[1], ".ttl") || strings.HasSuffix(parts[1], ".turtle") {
			n, err = st.LoadTurtle(parts[0], f)
		} else {
			n, err = st.LoadNTriplesParallel(parts[0], f, 0)
		}
		f.Close()
		if err != nil {
			log.Fatalf("loading %s: %v", parts[1], err)
		}
		log.Printf("loaded %d triples into <%s> in %v", n, parts[0], time.Since(start))
	}
	// The WAL replays after the base dataset (snapshot/synthetic/-load) is in
	// place: committed update batches that postdate the last snapshot land on
	// top, restoring the pre-crash store byte for byte.
	var wal *store.WAL
	if *walPath != "" {
		start := time.Now()
		w, rec, err := store.OpenWAL(*walPath)
		if err != nil {
			log.Fatalf("opening WAL %s: %v", *walPath, err)
		}
		wal = w
		defer wal.Close()
		if rec.Damage != nil {
			log.Printf("WAL %s: damaged tail dropped (%d bytes): %v", *walPath, rec.DroppedBytes, rec.Damage)
		}
		if len(rec.Batches) > 0 {
			changed, err := rec.Replay(st)
			if err != nil {
				log.Fatalf("replaying WAL %s: %v", *walPath, err)
			}
			log.Printf("replayed %d WAL batches (%d triples changed) from %s in %v",
				len(rec.Batches), changed, *walPath, time.Since(start))
		}
	}
	if *snapOut != "" {
		start := time.Now()
		if err := snapshot.WriteFile(*snapOut, st); err != nil {
			log.Fatalf("writing snapshot %s: %v", *snapOut, err)
		}
		log.Printf("persisted %d triples to %s in %v", st.Len(), *snapOut, time.Since(start))
		if wal != nil {
			// The snapshot now covers everything the WAL recorded; truncate it
			// so the next boot does not replay batches twice.
			if err := wal.Reset(); err != nil {
				log.Fatalf("resetting WAL %s after snapshot: %v", *walPath, err)
			}
			log.Printf("reset WAL %s (state persisted in %s)", *walPath, *snapOut)
		}
	}

	eng := sparql.NewEngine(st)
	eng.SetTimeout(*timeout)
	eng.Parallelism = *parallel
	eng.DisableWCOJ = *noWCOJ
	if wal != nil {
		eng.SetWAL(wal)
		log.Printf("updates durable: WAL at %s (seq=%d)", *walPath, wal.Seq())
	}
	if *cacheOn {
		eng.EnableCache(sparql.DefaultPlanCacheEntries, *cacheRows)
		log.Printf("serving caches on: %d plan entries, %d result rows", sparql.DefaultPlanCacheEntries, *cacheRows)
	}
	srv := server.New(eng)
	srv.MaxRows = *maxRows
	srv.MaxBodyBytes = *maxBody
	srv.MaxInFlight = *inflight
	srv.MaxQueryCost = *maxCost
	srv.Logger = log.Default()

	// Observability: one registry backs /metrics, the runtime gauges, and
	// the /stats blocks (same atomics, read through at render time).
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	srv.EnableMetrics(reg)
	if *slowLog != "" {
		w := io.Writer(os.Stderr)
		if *slowLog != "-" {
			f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("opening slow-query log %s: %v", *slowLog, err)
			}
			defer f.Close()
			w = f
		}
		srv.SetSlowLog(obs.NewSlowLog(w, *slowThr))
		log.Printf("slow-query log on: %s (threshold %v)", *slowLog, *slowThr)
	}
	if *debugAddr != "" {
		// pprof and the operator read-only surfaces live on their own
		// listener so they can be firewalled separately from query traffic.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/metrics", reg.Handler())
		dmux.Handle("/stats", srv.Handler())
		go func() {
			log.Printf("debug listener on %s (pprof, /metrics, /stats)", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	for _, uri := range st.GraphURIs() {
		log.Printf("graph <%s>: %d triples", uri, st.Graph(uri).Len())
	}
	log.Printf("SPARQL endpoint on %s/sparql (maxrows=%d, timeout=%v, cache=%v, parallel=%d, max-inflight=%d, max-cost=%g)",
		*listen, *maxRows, *timeout, *cacheOn, *parallel, *inflight, *maxCost)

	// Serve with full connection-lifecycle timeouts (slow-loris protection)
	// until SIGINT/SIGTERM, then drain: refuse new queries with 503 +
	// Retry-After, give in-flight ones up to -drain to finish, exit 0 on a
	// clean shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := server.NewHTTPServer(*listen, srv.Handler(), *timeout)
	if err := srv.Serve(ctx, hs, nil, *drain); err != nil {
		log.Fatal(err)
	}
	log.Print("drained cleanly; goodbye")
}

func mustLoadSynthetic(st *store.Store, dbp datagen.DBpediaConfig, dblp datagen.DBLPConfig, yago datagen.YAGOConfig) {
	if err := st.AddAll(datagen.DBpediaURI, datagen.DBpedia(dbp)); err != nil {
		log.Fatal(err)
	}
	if err := st.AddAll(datagen.DBLPURI, datagen.DBLP(dblp)); err != nil {
		log.Fatal(err)
	}
	if err := st.AddAll(datagen.YAGOURI, datagen.YAGO(yago)); err != nil {
		log.Fatal(err)
	}
}
