// Command rdfframes-server serves a SPARQL endpoint over an RDF dataset:
// either N-Triples files loaded from disk or the built-in synthetic
// benchmark datasets. It is the stand-in for the RDF engine (Virtuoso) in
// the paper's experimental setup.
//
// Usage:
//
//	rdfframes-server -listen :8080 -synthetic small
//	rdfframes-server -listen :8080 -load http://g1=dump1.nt -load http://g2=dump2.nt
//	rdfframes-server -maxrows 10000 -timeout 30s ...
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"rdfframes/internal/datagen"
	"rdfframes/internal/server"
	"rdfframes/internal/sparql"
	"rdfframes/internal/store"
)

type loadFlags []string

func (l *loadFlags) String() string     { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	var (
		listen    = flag.String("listen", ":8080", "address to serve on")
		synthetic = flag.String("synthetic", "", `generate synthetic datasets instead of loading: "small" or "bench"`)
		maxRows   = flag.Int("maxrows", 0, "cap rows per response (0 = unlimited); clients must paginate past it")
		timeout   = flag.Duration("timeout", time.Minute, "per-query evaluation deadline (0 = none)")
		loads     loadFlags
	)
	flag.Var(&loads, "load", "graphURI=file.nt pair to load (repeatable)")
	flag.Parse()

	st := store.New()
	switch *synthetic {
	case "small":
		mustLoadSynthetic(st, datagen.SmallDBpedia(), datagen.SmallDBLP(), datagen.SmallYAGO())
	case "bench":
		mustLoadSynthetic(st, datagen.BenchDBpedia(), datagen.BenchDBLP(), datagen.BenchYAGO())
	case "":
		if len(loads) == 0 {
			fmt.Fprintln(os.Stderr, "nothing to serve: pass -synthetic small|bench or -load graph=file.nt")
			os.Exit(2)
		}
	default:
		log.Fatalf("unknown -synthetic value %q", *synthetic)
	}
	for _, spec := range loads {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("bad -load %q, want graphURI=file.nt", spec)
		}
		f, err := os.Open(parts[1])
		if err != nil {
			log.Fatalf("opening %s: %v", parts[1], err)
		}
		var n int
		if strings.HasSuffix(parts[1], ".ttl") || strings.HasSuffix(parts[1], ".turtle") {
			n, err = st.LoadTurtle(parts[0], f)
		} else {
			n, err = st.LoadNTriples(parts[0], f)
		}
		f.Close()
		if err != nil {
			log.Fatalf("loading %s: %v", parts[1], err)
		}
		log.Printf("loaded %d triples into <%s>", n, parts[0])
	}

	eng := sparql.NewEngine(st)
	eng.Timeout = *timeout
	srv := server.New(eng)
	srv.MaxRows = *maxRows
	srv.Logger = log.Default()

	for _, uri := range st.GraphURIs() {
		log.Printf("graph <%s>: %d triples", uri, st.Graph(uri).Len())
	}
	log.Printf("SPARQL endpoint on %s/sparql (maxrows=%d, timeout=%v)", *listen, *maxRows, *timeout)
	log.Fatal(http.ListenAndServe(*listen, srv.Handler()))
}

func mustLoadSynthetic(st *store.Store, dbp datagen.DBpediaConfig, dblp datagen.DBLPConfig, yago datagen.YAGOConfig) {
	if err := st.AddAll(datagen.DBpediaURI, datagen.DBpedia(dbp)); err != nil {
		log.Fatal(err)
	}
	if err := st.AddAll(datagen.DBLPURI, datagen.DBLP(dblp)); err != nil {
		log.Fatal(err)
	}
	if err := st.AddAll(datagen.YAGOURI, datagen.YAGO(yago)); err != nil {
		log.Fatal(err)
	}
}
