module rdfframes

go 1.24
