// Package rdfframes is a Go implementation of RDFFrames ("RDFFrames:
// Knowledge Graph Access for Machine Learning Tools", VLDB 2020): an
// imperative, navigational API for extracting tabular datasets from RDF
// knowledge graphs.
//
// A user builds an RDFFrame through a sequence of method calls — seed the
// frame from a triple pattern, expand it by graph navigation, then filter,
// group, aggregate, join, sort, and slice it with familiar relational
// operators. The calls are recorded lazily; nothing touches the database
// until Execute (or ToSPARQL). At that point the recorded operators are
// compiled into a single optimized SPARQL query, pushed to an RDF engine or
// SPARQL endpoint, and the result is returned as a DataFrame.
//
//	graph := rdfframes.NewKnowledgeGraph("http://dbpedia.org", map[string]string{
//		"dbpp": "http://dbpedia.org/property/",
//		"dbpr": "http://dbpedia.org/resource/",
//	})
//	movies := graph.FeatureDomainRange("dbpp:starring", "movie", "actor")
//	american := movies.
//		Expand("actor", rdfframes.Out("dbpp:birthPlace", "country")).
//		Filter(rdfframes.Conds{"country": {"=dbpr:United_States"}})
//	prolific := american.GroupBy("actor").Count("movie", "movie_count").
//		Filter(rdfframes.Conds{"movie_count": {">=50"}})
//	result := prolific.Expand("actor",
//		rdfframes.In("dbpp:starring", "movie"),
//		rdfframes.Out("dbpp:academyAward", "award").Opt())
//	df, err := result.Execute(client)
package rdfframes

import (
	"fmt"
	"io"
	"strings"

	"rdfframes/internal/client"
	"rdfframes/internal/core"
	"rdfframes/internal/dataframe"
	"rdfframes/internal/rdf"
	"rdfframes/internal/sparql"
	"rdfframes/internal/store"
)

// DataFrame is the tabular result type returned by Execute.
type DataFrame = dataframe.DataFrame

// Client executes SPARQL queries; see ConnectHTTP and ConnectStore.
type Client = client.Client

// Exporter is the streaming-export side of a client: Export writes a
// query's full result into w as CSV without materializing it on either
// end. Both ConnectHTTP and ConnectStore clients implement it.
type Exporter interface {
	Export(query string, w io.Writer) (int64, error)
}

// Featurizer is the topology-features side of a client: Features returns
// per-node in/out degree and bounded 2-hop neighborhood counts for the
// distinct nodes a query selects, computed store-side without decoding.
// Both ConnectHTTP and ConnectStore clients implement it.
type Featurizer interface {
	Features(query, nodeVar string, hopCap int) (*sparql.Results, error)
}

// JoinType selects join semantics for Join and JoinOn.
type JoinType = core.JoinType

// Join types.
const (
	InnerJoin      = core.InnerJoin
	LeftOuterJoin  = core.LeftOuterJoin
	RightOuterJoin = core.RightOuterJoin
	FullOuterJoin  = core.FullOuterJoin
)

// ConnectHTTP returns a client for a remote SPARQL endpoint, retrieving
// results transparently in pages of pageSize rows (0 disables pagination).
func ConnectHTTP(endpoint string, pageSize int) Client {
	return client.NewHTTPClient(endpoint, pageSize)
}

// ConnectStore returns an in-process client over a local triple store.
func ConnectStore(st *store.Store) Client {
	return client.NewDirect(sparql.NewEngine(st))
}

// KnowledgeGraph identifies an RDF graph by URI and carries the prefix
// bindings used to abbreviate IRIs in API calls.
type KnowledgeGraph struct {
	uri      string
	prefixes *rdf.PrefixMap
}

// NewKnowledgeGraph returns a handle on the graph with the given URI. The
// prefixes map extends the common RDF prefixes (rdf, rdfs, xsd, owl).
func NewKnowledgeGraph(graphURI string, prefixes map[string]string) *KnowledgeGraph {
	pm := rdf.CommonPrefixes()
	pm.Merge(rdf.NewPrefixMap(prefixes))
	return &KnowledgeGraph{uri: graphURI, prefixes: pm}
}

// URI returns the graph URI.
func (g *KnowledgeGraph) URI() string { return g.uri }

// Prefixes returns a copy of the graph's prefix map.
func (g *KnowledgeGraph) Prefixes() *rdf.PrefixMap { return g.prefixes.Clone() }

// Seed starts a frame from a triple pattern — the paper's seed operator.
// Each argument is either a column name (plain identifier) or a term
// (prefixed name, full IRI, or quoted literal).
func (g *KnowledgeGraph) Seed(sub, pred, obj string) *RDFFrame {
	f := &RDFFrame{graph: g}
	s, err := g.patternNode(sub)
	if err != nil {
		return f.fail(err)
	}
	p, err := g.patternNode(pred)
	if err != nil {
		return f.fail(err)
	}
	o, err := g.patternNode(obj)
	if err != nil {
		return f.fail(err)
	}
	f.op = core.SeedOp{GraphURI: g.uri, S: s, P: p, O: o}
	return f
}

// FeatureDomainRange starts a frame with all (domain, range) pairs of
// entities connected by the given predicate — the seed variant used
// throughout the paper (e.g. all movies and the actors starring in them).
func (g *KnowledgeGraph) FeatureDomainRange(pred, domainCol, rangeCol string) *RDFFrame {
	return g.Seed(domainCol, pred, rangeCol)
}

// Entities starts a frame with all instances of the given RDF class.
func (g *KnowledgeGraph) Entities(class, col string) *RDFFrame {
	return g.Seed(col, "rdf:type", class)
}

// Classes is a data exploration operator: a frame of the graph's entity
// classes with their instance counts, largest classes first.
func (g *KnowledgeGraph) Classes(classCol, countCol string) *RDFFrame {
	return g.Seed("instance_", "rdf:type", classCol).
		GroupBy(classCol).Count("instance_", countCol).
		Sort(Desc(countCol))
}

// PredicateDistribution is a data exploration operator: a frame of the
// graph's predicates with their usage counts, most used first.
func (g *KnowledgeGraph) PredicateDistribution(predCol, countCol string) *RDFFrame {
	return g.Seed("subject_", predCol, "object_").
		GroupBy(predCol).Count("subject_", countCol).
		Sort(Desc(countCol))
}

// SearchLabels is a keyword exploration operator (the paper's §7 future
// work): a frame of entities whose rdfs:label matches the keyword,
// case-insensitively.
func (g *KnowledgeGraph) SearchLabels(keyword, entityCol, labelCol string) *RDFFrame {
	return g.Seed(entityCol, "rdfs:label", labelCol).
		FilterRaw(labelCol, fmt.Sprintf("regex(str(?%s), %q, %q)", labelCol, keyword, "i"))
}

// patternNode interprets an API string as a column or a constant term.
// Strings containing ':' (prefixed names or IRIs) and quoted strings are
// terms; plain identifiers are columns.
func (g *KnowledgeGraph) patternNode(s string) (core.PatternNode, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, `"`) {
		t, err := rdf.ParseTerm(s)
		if err != nil {
			return core.PatternNode{}, err
		}
		return core.Constant(t), nil
	}
	if strings.Contains(s, ":") {
		iri, err := g.prefixes.Expand(s)
		if err != nil {
			return core.PatternNode{}, err
		}
		return core.Constant(rdf.NewIRI(iri)), nil
	}
	if !core.ValidColumn(s) {
		return core.PatternNode{}, &FrameError{Op: "seed", Msg: "invalid column name " + s}
	}
	return core.Column(s), nil
}
