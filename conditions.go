package rdfframes

import (
	"sort"
	"strconv"
	"strings"

	"rdfframes/internal/core"
	"rdfframes/internal/rdf"
)

// parseConds renders the paper-style condition map into SPARQL boolean
// expressions attached to their columns.
func parseConds(g *KnowledgeGraph, conds Conds) ([]core.Condition, error) {
	cols := make([]string, 0, len(conds))
	for col := range conds {
		cols = append(cols, col)
	}
	sort.Strings(cols) // deterministic generated queries
	var out []core.Condition
	for _, col := range cols {
		if !core.ValidColumn(col) {
			return nil, &FrameError{Op: "filter", Msg: "invalid column name " + col}
		}
		for _, cond := range conds[col] {
			expr, err := renderCondition(g, col, cond)
			if err != nil {
				return nil, err
			}
			out = append(out, core.Condition{Col: col, Expr: expr})
		}
	}
	return out, nil
}

// comparison operators, longest first so ">=" wins over ">".
var compareOps = []string{">=", "<=", "!=", ">", "<", "="}

func renderCondition(g *KnowledgeGraph, col, cond string) (string, error) {
	c := strings.TrimSpace(cond)
	if c == "" {
		return "", &FrameError{Op: "filter", Msg: "empty condition for column " + col}
	}
	// Type-check predicates.
	switch strings.ToLower(c) {
	case "isuri", "isiri":
		return "isIRI(?" + col + ")", nil
	case "isliteral":
		return "isLiteral(?" + col + ")", nil
	case "isblank":
		return "isBlank(?" + col + ")", nil
	case "isnumeric":
		return "isNumeric(?" + col + ")", nil
	}
	// Membership: In(a, b, ...).
	if len(c) > 3 && strings.EqualFold(c[:3], "in(") && strings.HasSuffix(c, ")") {
		items := splitTopLevel(c[3 : len(c)-1])
		rendered := make([]string, 0, len(items))
		for _, it := range items {
			v, err := renderValue(g, it)
			if err != nil {
				return "", err
			}
			rendered = append(rendered, v)
		}
		return "?" + col + " IN (" + strings.Join(rendered, ", ") + ")", nil
	}
	// Comparison operators.
	for _, op := range compareOps {
		if strings.HasPrefix(c, op) {
			v, err := renderValue(g, c[len(op):])
			if err != nil {
				return "", err
			}
			return "?" + col + " " + op + " " + v, nil
		}
	}
	// Raw SPARQL expression pass-through (e.g. regex(str(?col), "USA")).
	if strings.Contains(c, "(") && strings.Contains(c, "?") {
		return c, nil
	}
	return "", &FrameError{Op: "filter", Msg: "cannot parse condition " + strconv.Quote(cond) + " for column " + col}
}

// renderValue renders a condition operand: a number, quoted string, year
// (bare 4-digit numbers compare numerically), prefixed name, or IRI.
func renderValue(g *KnowledgeGraph, raw string) (string, error) {
	v := strings.TrimSpace(raw)
	if v == "" {
		return "", &FrameError{Op: "filter", Msg: "missing comparison value"}
	}
	if strings.HasPrefix(v, `"`) {
		return v, nil // quoted literal, already SPARQL syntax
	}
	if _, err := strconv.ParseFloat(v, 64); err == nil {
		return v, nil // bare numeric literal
	}
	if strings.Contains(v, ":") || strings.HasPrefix(v, "<") {
		iri, err := g.prefixes.Expand(v)
		if err != nil {
			return "", &FrameError{Op: "filter", Msg: err.Error()}
		}
		return rdf.NewIRI(iri).String(), nil
	}
	// Bare word: treat as a plain string literal.
	return rdf.NewLiteral(v).String(), nil
}

// splitTopLevel splits a comma-separated list, respecting quotes.
func splitTopLevel(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}
