// Benchmarks regenerating every figure of the paper's evaluation (§6).
//
//	Figure 3 (a,b,c): design decisions — naive generation vs navigation +
//	    dataframes vs RDFFrames on the three case studies.
//	Figure 4 (a,b,c): baselines — rdflib-style scan and per-pattern SPARQL
//	    (both + dataframes) vs expert SPARQL vs RDFFrames.
//	Figure 5: the 15-query synthetic workload under expert SPARQL, naive
//	    generation, and RDFFrames.
//
// Run with: go test -bench=. -benchmem
// The absolute numbers reflect the in-process Go engine on synthetic data;
// the comparisons within a figure are the reproduction target (see
// EXPERIMENTS.md).
package rdfframes_test

import (
	"sync"
	"testing"
	"time"

	"rdfframes/internal/bench"
)

var (
	benchOnce sync.Once
	benchEnv  *bench.Env
	benchErr  error
)

func sharedBenchEnv(b *testing.B) *bench.Env {
	b.Helper()
	benchOnce.Do(func() { benchEnv, benchErr = bench.NewEnv(bench.ScaleSmall) })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

func benchTask(b *testing.B, taskID string, approaches []bench.Approach) {
	env := sharedBenchEnv(b)
	var task *bench.Task
	for _, t := range append(bench.CaseStudies(), bench.Synthetic()...) {
		if t.ID == taskID {
			task = t
			break
		}
	}
	if task == nil {
		b.Fatalf("unknown task %s", taskID)
	}
	for _, a := range approaches {
		b.Run(string(a), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := task.Measure(env, a, 5*time.Minute)
				if m.Err != nil {
					b.Fatalf("%s under %s: %v", taskID, a, m.Err)
				}
			}
		})
	}
}

var fig3Approaches = []bench.Approach{bench.Naive, bench.NavPandas, bench.RDFFrames}
var fig4Approaches = []bench.Approach{bench.ScanPandas, bench.SPARQLPandas, bench.Expert, bench.RDFFrames}
var fig5Approaches = []bench.Approach{bench.Expert, bench.Naive, bench.RDFFrames}

// Figure 3: evaluating the design decisions of RDFFrames.

func BenchmarkFigure3a_MovieGenre(b *testing.B)    { benchTask(b, "cs1", fig3Approaches) }
func BenchmarkFigure3b_TopicModeling(b *testing.B) { benchTask(b, "cs2", fig3Approaches) }
func BenchmarkFigure3c_KGEmbedding(b *testing.B)   { benchTask(b, "cs3", fig3Approaches) }

// Figure 4: comparing RDFFrames to alternative baselines.

func BenchmarkFigure4a_MovieGenre(b *testing.B)    { benchTask(b, "cs1", fig4Approaches) }
func BenchmarkFigure4b_TopicModeling(b *testing.B) { benchTask(b, "cs2", fig4Approaches) }
func BenchmarkFigure4c_KGEmbedding(b *testing.B)   { benchTask(b, "cs3", fig4Approaches) }

// Figure 5: the synthetic workload, one benchmark per query.

func BenchmarkFigure5_Q01(b *testing.B) { benchTask(b, "Q1", fig5Approaches) }
func BenchmarkFigure5_Q02(b *testing.B) { benchTask(b, "Q2", fig5Approaches) }
func BenchmarkFigure5_Q03(b *testing.B) { benchTask(b, "Q3", fig5Approaches) }
func BenchmarkFigure5_Q04(b *testing.B) { benchTask(b, "Q4", fig5Approaches) }
func BenchmarkFigure5_Q05(b *testing.B) { benchTask(b, "Q5", fig5Approaches) }
func BenchmarkFigure5_Q06(b *testing.B) { benchTask(b, "Q6", fig5Approaches) }
func BenchmarkFigure5_Q07(b *testing.B) { benchTask(b, "Q7", fig5Approaches) }
func BenchmarkFigure5_Q08(b *testing.B) { benchTask(b, "Q8", fig5Approaches) }
func BenchmarkFigure5_Q09(b *testing.B) { benchTask(b, "Q9", fig5Approaches) }
func BenchmarkFigure5_Q10(b *testing.B) { benchTask(b, "Q10", fig5Approaches) }
func BenchmarkFigure5_Q11(b *testing.B) { benchTask(b, "Q11", fig5Approaches) }
func BenchmarkFigure5_Q12(b *testing.B) { benchTask(b, "Q12", fig5Approaches) }
func BenchmarkFigure5_Q13(b *testing.B) { benchTask(b, "Q13", fig5Approaches) }
func BenchmarkFigure5_Q14(b *testing.B) { benchTask(b, "Q14", fig5Approaches) }
func BenchmarkFigure5_Q15(b *testing.B) { benchTask(b, "Q15", fig5Approaches) }

// Component micro-benchmarks: the cost of query generation itself (the
// compiler is on the critical path of every Execute).

func BenchmarkQueryGeneration(b *testing.B) {
	env := sharedBenchEnv(b)
	task := bench.CaseStudies()[0]
	frame := task.Frame(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := frame.ToSPARQL(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveQueryGeneration(b *testing.B) {
	env := sharedBenchEnv(b)
	task := bench.CaseStudies()[0]
	frame := task.Frame(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := frame.ToNaiveSPARQL(); err != nil {
			b.Fatal(err)
		}
	}
}
