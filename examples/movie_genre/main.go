// Movie genre classification (paper case study 6.1.1, Listing 3 and
// Appendix A.1 end to end): extract a dataframe of movies starring American
// or prolific actors with their features, then train a logistic regression
// classifier that predicts the genre of movies whose genre is missing.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"rdfframes"
	"rdfframes/internal/dataframe"
	"rdfframes/internal/datagen"
	"rdfframes/internal/ml"
	"rdfframes/internal/rdf"
	"rdfframes/internal/store"
)

func main() {
	client, err := connect()
	if err != nil {
		log.Fatal(err)
	}
	graph := rdfframes.NewKnowledgeGraph(datagen.DBpediaURI, datagen.DBpediaPrefixes())

	// --- Data preparation with RDFFrames (Listing 3) ---
	movies := graph.FeatureDomainRange("dbpp:starring", "movie", "actor").
		Expand("actor",
			rdfframes.Out("dbpp:birthPlace", "actor_country"),
			rdfframes.Out("rdfs:label", "actor_name")).
		Expand("movie",
			rdfframes.Out("rdfs:label", "movie_name"),
			rdfframes.Out("dcterms:subject", "subject"),
			rdfframes.Out("dbpp:country", "movie_country"),
			rdfframes.Out("dbpo:genre", "genre").Opt()).
		Cache()
	american := movies.FilterRaw("actor_country", `regex(str(?actor_country), "United_States")`)
	prolific := movies.GroupBy("actor").CountDistinct("movie", "movie_count").
		Filter(rdfframes.Conds{"movie_count": {">=10"}})
	dataset := american.Join(prolific, "actor", rdfframes.FullOuterJoin).
		Join(movies, "actor", rdfframes.InnerJoin)

	df, err := dataset.Execute(client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted dataframe: %d rows x %d columns\n", df.Len(), len(df.Columns()))

	// Handoff for tools outside this process: stream the same frame to CSV
	// without materializing it on the server or in the client.
	csvPath := filepath.Join(os.TempDir(), "movie_genre.csv")
	out, err := os.Create(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	n, err := dataset.ExportCSV(client, out)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d bytes of CSV to %s\n", n, csvPath)

	// --- Feature engineering: bag-of-words over subject + movie name ---
	labelled, unlabelled := split(df)
	fmt.Printf("labelled (genre known): %d rows, unlabelled: %d rows\n", len(labelled.docs), len(unlabelled.docs))
	if len(labelled.docs) < 10 {
		log.Fatal("not enough labelled data")
	}
	tfidf := ml.FitTFIDF(labelled.docs, 500)
	x := tfidf.Transform(labelled.docs)

	model, err := ml.TrainLogReg(x, labelled.genres, 15, 0.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training accuracy: %.2f over %d genres\n", model.Accuracy(x, labelled.genres), len(model.Classes))

	// --- Predict missing genres ---
	if len(unlabelled.docs) > 0 {
		pred := model.Predict(tfidf.Transform(unlabelled.docs[:1])[0])
		fmt.Printf("predicted genre for %q: %s\n", unlabelled.names[0], pred)
	}
}

type subset struct {
	docs   [][]string
	genres []string
	names  []string
}

// split separates rows with a known genre (training data) from those
// missing it (to be predicted). Documents combine the categorical subject
// (kept whole — it is an IRI, not text) with tokens from the names.
func split(df *dataframe.DataFrame) (labelled, unlabelled subset) {
	for i := 0; i < df.Len(); i++ {
		doc := append(
			[]string{localName(df.Cell(i, "subject").Value)},
			ml.Tokenize(df.Cell(i, "movie_name").Value+" "+df.Cell(i, "actor_name").Value)...)
		genre := df.Cell(i, "genre")
		// Train only on the coarse well-known genres; the long tail of
		// fine-grained genres has too few examples per class.
		if genre.IsBound() && !strings.HasPrefix(localName(genre.Value), "Genre_") {
			labelled.docs = append(labelled.docs, doc)
			labelled.genres = append(labelled.genres, genre.Value)
			labelled.names = append(labelled.names, df.Cell(i, "movie_name").Value)
		} else {
			unlabelled.docs = append(unlabelled.docs, doc)
			unlabelled.names = append(unlabelled.names, df.Cell(i, "movie_name").Value)
		}
	}
	return labelled, unlabelled
}

// localName returns the last path segment of an IRI, a usable categorical
// feature token.
func localName(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '/' || iri[i] == '#' {
			return iri[i+1:]
		}
	}
	return iri
}

func connect() (rdfframes.Client, error) {
	if ep := os.Getenv("RDFFRAMES_ENDPOINT"); ep != "" {
		return rdfframes.ConnectHTTP(ep, 10000), nil
	}
	st := store.New()
	var triples []rdf.Triple = datagen.DBpedia(datagen.SmallDBpedia())
	if err := st.AddAll(datagen.DBpediaURI, triples); err != nil {
		return nil, err
	}
	return rdfframes.ConnectStore(st), nil
}
