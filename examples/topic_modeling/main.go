// Topic modeling (paper case study 6.1.2, Listing 5 and Appendix A.2 end to
// end): extract the titles of recent papers by prolific SIGMOD/VLDB authors
// from a DBLP-like graph, then recover the active research topics with
// TF-IDF + truncated SVD.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"rdfframes"
	"rdfframes/internal/datagen"
	"rdfframes/internal/ml"
	"rdfframes/internal/store"
)

func main() {
	client, err := connect()
	if err != nil {
		log.Fatal(err)
	}
	graph := rdfframes.NewKnowledgeGraph(datagen.DBLPURI, datagen.DBLPPrefixes())

	// --- Data preparation with RDFFrames (Listing 5) ---
	papers := graph.Entities("swrc:InProceedings", "paper").
		Expand("paper",
			rdfframes.Out("dc:creator", "author"),
			rdfframes.Out("dcterm:issued", "date"),
			rdfframes.Out("swrc:series", "conference"),
			rdfframes.Out("dc:title", "title")).
		Cache()
	authors := papers.
		FilterRaw("date", "year(xsd:dateTime(?date)) >= 2005").
		Filter(rdfframes.Conds{"conference": {"In(dblprc:vldb, dblprc:sigmod)"}}).
		GroupBy("author").Count("paper", "n_papers").
		Filter(rdfframes.Conds{"n_papers": {">=12"}}).
		FilterRaw("date", "year(xsd:dateTime(?date)) >= 2005")
	titles := papers.Join(authors, "author", rdfframes.InnerJoin).SelectCols("title")

	df, err := titles.Execute(client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d paper titles by prolific VLDB/SIGMOD authors\n", df.Len())

	// Handoff for tools outside this process: stream the same frame to CSV
	// without materializing it on the server or in the client.
	csvPath := filepath.Join(os.TempDir(), "paper_titles.csv")
	out, err := os.Create(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	n, err := titles.ExportCSV(client, out)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d bytes of CSV to %s\n", n, csvPath)
	if df.Len() < 5 {
		log.Fatal("too few titles; increase the dataset size")
	}

	// --- Topic modeling: TF-IDF + truncated SVD ---
	docs := make([][]string, df.Len())
	for i := 0; i < df.Len(); i++ {
		docs[i] = ml.Tokenize(df.Cell(i, "title").Value)
	}
	tfidf := ml.FitTFIDF(docs, 1000)
	x := tfidf.Transform(docs)
	svd := ml.TruncatedSVD(x, 4, 50, 122)

	fmt.Println("active database research topics:")
	for c := range svd.Components {
		terms := svd.TopTerms(tfidf.Vocab, c, 7)
		fmt.Printf("  Topic %d: %s\n", c, strings.Join(terms, " "))
	}
}

func connect() (rdfframes.Client, error) {
	if ep := os.Getenv("RDFFRAMES_ENDPOINT"); ep != "" {
		return rdfframes.ConnectHTTP(ep, 10000), nil
	}
	st := store.New()
	if err := st.AddAll(datagen.DBLPURI, datagen.DBLP(datagen.SmallDBLP())); err != nil {
		return nil, err
	}
	return rdfframes.ConnectStore(st), nil
}
