// Knowledge graph embedding (paper case study 6.1.3, Listing 7 and
// Appendix A.3 end to end): extract all entity-to-entity triples with one
// RDFFrames call, train a TransE embedding model on them, and evaluate link
// prediction with filtered MRR and Hits@k.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rdfframes"
	"rdfframes/internal/dataframe"
	"rdfframes/internal/datagen"
	"rdfframes/internal/ml"
	"rdfframes/internal/rdf"
	"rdfframes/internal/store"
)

func main() {
	client, err := connect()
	if err != nil {
		log.Fatal(err)
	}
	graph := rdfframes.NewKnowledgeGraph(datagen.DBLPURI, datagen.DBLPPrefixes())

	// --- Data preparation with RDFFrames (Listing 7: one line) ---
	frame := graph.FeatureDomainRange("pred", "sub", "obj").
		Filter(rdfframes.Conds{"obj": {"isURI"}})
	df, err := frame.Execute(client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d entity-to-entity triples\n", df.Len())

	// --- Handoff for external tools: stream the same frame to CSV ---
	// ExportCSV never materializes the result on the server or in the
	// client: the engine encodes one bounded chunk at a time, so this works
	// for frames far larger than memory.
	csvPath := filepath.Join(os.TempDir(), "dblp_triples.csv")
	out, err := os.Create(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	n, err := frame.ExportCSV(client, out)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d bytes of CSV to %s\n", n, csvPath)

	// --- KG → feature matrix: store-side topology features ---
	// For each distinct subject entity the store computes in/out degree and
	// bounded 2-hop neighborhood counts directly from its sorted indexes,
	// without decoding terms — graph features for downstream models that the
	// embedding alone does not capture.
	feats, err := frame.Features(client, "sub", 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology feature matrix: %d nodes x %d features\n",
		feats.Len(), len(feats.Columns())-1)
	featPath := filepath.Join(os.TempDir(), "dblp_features.csv")
	ff, err := os.Create(featPath)
	if err != nil {
		log.Fatal(err)
	}
	err = feats.WriteCSV(ff, false)
	if cerr := ff.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote feature matrix to %s\n", featPath)

	// --- Encode and split ---
	triples, nEnt, nRel := encode(df)
	split := len(triples) * 9 / 10
	train, test := triples[:split], triples[split:]
	if len(test) > 200 {
		test = test[:200] // bound evaluation cost
	}
	known := make(map[ml.TripleID]bool, len(triples))
	for _, t := range triples {
		known[t] = true
	}

	// --- Train TransE and evaluate link prediction ---
	cfg := ml.DefaultEmbeddingConfig()
	cfg.Epochs = 30
	model, err := ml.TrainTransE(train, nEnt, nRel, cfg)
	if err != nil {
		log.Fatal(err)
	}
	metrics := model.EvaluateRanking(test, known)
	fmt.Printf("link prediction over %d entities, %d relations:\n", nEnt, nRel)
	fmt.Printf("  filtered MRR: %.3f\n", metrics.MRR)
	for _, k := range []int{1, 3, 10} {
		fmt.Printf("  Hits@%-2d:      %.3f\n", k, metrics.HitsAt[k])
	}
}

// encode dictionary-encodes the (sub, pred, obj) dataframe.
func encode(df *dataframe.DataFrame) ([]ml.TripleID, int, int) {
	ents := map[rdf.Term]int{}
	rels := map[rdf.Term]int{}
	id := func(m map[rdf.Term]int, t rdf.Term) int {
		if v, ok := m[t]; ok {
			return v
		}
		m[t] = len(m)
		return m[t]
	}
	out := make([]ml.TripleID, 0, df.Len())
	for i := 0; i < df.Len(); i++ {
		out = append(out, ml.TripleID{
			S: id(ents, df.Cell(i, "sub")),
			R: id(rels, df.Cell(i, "pred")),
			O: id(ents, df.Cell(i, "obj")),
		})
	}
	return out, len(ents), len(rels)
}

func connect() (rdfframes.Client, error) {
	if ep := os.Getenv("RDFFRAMES_ENDPOINT"); ep != "" {
		return rdfframes.ConnectHTTP(ep, 10000), nil
	}
	st := store.New()
	cfg := datagen.SmallDBLP()
	cfg.Papers = 400 // keep link prediction evaluation quick
	if err := st.AddAll(datagen.DBLPURI, datagen.DBLP(cfg)); err != nil {
		return nil, err
	}
	return rdfframes.ConnectStore(st), nil
}
