// Quickstart: build an RDFFrame with navigation and relational operators,
// inspect the generated SPARQL, and execute it.
//
// By default the example generates a small synthetic DBpedia-like graph and
// queries it in-process. Set RDFFRAMES_ENDPOINT to a SPARQL endpoint URL
// (e.g. one served by cmd/rdfframes-server) to run against HTTP instead.
package main

import (
	"fmt"
	"log"
	"os"

	"rdfframes"
	"rdfframes/internal/datagen"
	"rdfframes/internal/store"
)

func main() {
	client, err := connect()
	if err != nil {
		log.Fatal(err)
	}

	graph := rdfframes.NewKnowledgeGraph(datagen.DBpediaURI, datagen.DBpediaPrefixes())

	// Prolific actors: who stars in at least five movies, sorted by count.
	prolific := graph.FeatureDomainRange("dbpp:starring", "movie", "actor").
		GroupBy("actor").CountDistinct("movie", "movie_count").
		Filter(rdfframes.Conds{"movie_count": {">=5"}}).
		Sort(rdfframes.Desc("movie_count")).
		Head(10)

	query, err := prolific.ToSPARQL()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Generated SPARQL:")
	fmt.Println(query)

	df, err := prolific.Execute(client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top prolific actors:")
	fmt.Println(df)

	// Exploration: what entity classes does the graph contain?
	classes, err := graph.Classes("class", "instances").Execute(client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Class distribution:")
	fmt.Println(classes)
}

func connect() (rdfframes.Client, error) {
	if ep := os.Getenv("RDFFRAMES_ENDPOINT"); ep != "" {
		fmt.Fprintf(os.Stderr, "connecting to %s\n", ep)
		return rdfframes.ConnectHTTP(ep, 10000), nil
	}
	fmt.Fprintln(os.Stderr, "generating synthetic DBpedia-like graph (set RDFFRAMES_ENDPOINT to use HTTP)")
	st := store.New()
	if err := st.AddAll(datagen.DBpediaURI, datagen.DBpedia(datagen.SmallDBpedia())); err != nil {
		return nil, err
	}
	return rdfframes.ConnectStore(st), nil
}
