package rdfframes

import (
	"fmt"
	"strings"
	"testing"

	"rdfframes/internal/dataframe"
	"rdfframes/internal/rdf"
	"rdfframes/internal/sparql"
	"rdfframes/internal/store"
)

const dbpediaURI = "http://dbpedia.org"

var dbpediaPrefixes = map[string]string{
	"dbpp":    "http://dbpedia.org/property/",
	"dbpr":    "http://dbpedia.org/resource/",
	"dbpo":    "http://dbpedia.org/ontology/",
	"dcterms": "http://purl.org/dc/terms/",
}

// miniDBpedia builds a small movie graph with known statistics:
//   - actors a0..a5; a0,a1,a2 born in the US, a3,a4,a5 elsewhere
//   - a0 stars in 6 movies, a1 in 3, a2 in 1, a3 in 5, a4 in 2, a5 in 1
//   - every movie m<i> has a title; even-numbered movies have a genre
//   - a0 and a3 have academy awards
func miniDBpedia(t testing.TB) *store.Store {
	t.Helper()
	st := store.New()
	p := rdf.CommonPrefixes()
	p.Merge(rdf.NewPrefixMap(dbpediaPrefixes))
	add := func(s, pred string, o rdf.Term) {
		tr := rdf.Triple{S: rdf.NewIRI(p.MustExpand(s)), P: rdf.NewIRI(p.MustExpand(pred)), O: o}
		if err := st.Add(dbpediaURI, tr); err != nil {
			t.Fatal(err)
		}
	}
	res := func(s string) rdf.Term { return rdf.NewIRI(p.MustExpand(s)) }

	counts := []int{6, 3, 1, 5, 2, 1}
	movieID := 0
	for actor, n := range counts {
		a := fmt.Sprintf("dbpr:a%d", actor)
		if actor <= 2 {
			add(a, "dbpp:birthPlace", res("dbpr:United_States"))
		} else {
			add(a, "dbpp:birthPlace", res("dbpr:France"))
		}
		add(a, "rdfs:label", rdf.NewLiteral(fmt.Sprintf("Actor %d", actor)))
		for i := 0; i < n; i++ {
			m := fmt.Sprintf("dbpr:m%d", movieID)
			add(m, "dbpp:starring", res(a))
			add(m, "rdfs:label", rdf.NewLiteral(fmt.Sprintf("Movie %d", movieID)))
			add(m, "dcterms:subject", res(fmt.Sprintf("dbpr:subject%d", movieID%3)))
			add(m, "dbpp:country", res("dbpr:United_States"))
			if movieID%2 == 0 {
				add(m, "dbpo:genre", res(fmt.Sprintf("dbpr:genre%d", movieID%2)))
			}
			movieID++
		}
	}
	add("dbpr:a0", "dbpp:academyAward", res("dbpr:Oscar_Best_Actor"))
	add("dbpr:a3", "dbpp:academyAward", res("dbpr:Oscar_Best_Actor"))
	return st
}

func dbpediaGraph() *KnowledgeGraph {
	return NewKnowledgeGraph(dbpediaURI, dbpediaPrefixes)
}

// listing1 builds the paper's motivating example (Listing 1): prolific
// American actors (>= threshold movies), their movies and optional awards.
func listing1(g *KnowledgeGraph, threshold int) *RDFFrame {
	movies := g.FeatureDomainRange("dbpp:starring", "movie", "actor")
	american := movies.
		Expand("actor", Out("dbpp:birthPlace", "country")).
		Filter(Conds{"country": {"=dbpr:United_States"}})
	prolific := american.GroupBy("actor").CountDistinct("movie", "movie_count").
		Filter(Conds{"movie_count": {fmt.Sprintf(">=%d", threshold)}})
	return prolific.Expand("actor",
		In("dbpp:starring", "movie"),
		Out("dbpp:academyAward", "award").Opt())
}

func TestListing1GeneratesNestedQuery(t *testing.T) {
	q, err := listing1(dbpediaGraph(), 50).ToSPARQL()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"GROUP BY ?actor",
		"HAVING ( COUNT(DISTINCT ?movie) >= 50 )",
		"OPTIONAL {",
		"?movie <http://dbpedia.org/property/starring> ?actor",
		"FILTER ( ?country = <http://dbpedia.org/resource/United_States> )",
	} {
		if !strings.Contains(q, want) {
			t.Errorf("generated query missing %q:\n%s", want, q)
		}
	}
	// Exactly one level of nesting: the grouped subquery.
	if got := strings.Count(q, "SELECT"); got != 2 {
		t.Errorf("expected exactly 2 SELECTs (one subquery), got %d:\n%s", got, q)
	}
	if _, err := sparql.Parse(q); err != nil {
		t.Fatalf("generated query does not parse: %v\n%s", err, q)
	}
}

func TestListing1ExecutesCorrectly(t *testing.T) {
	st := miniDBpedia(t)
	df, err := listing1(dbpediaGraph(), 3).Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	// Prolific American actors with >= 3 movies: a0 (6 movies), a1 (3).
	actors := map[string]bool{}
	awards := 0
	for i := 0; i < df.Len(); i++ {
		actors[df.Cell(i, "actor").Value] = true
		if df.Cell(i, "award").IsBound() {
			awards++
		}
	}
	if len(actors) != 2 {
		t.Fatalf("prolific actors = %v, want a0 and a1", actors)
	}
	if !actors["http://dbpedia.org/resource/a0"] || !actors["http://dbpedia.org/resource/a1"] {
		t.Fatalf("wrong actors: %v", actors)
	}
	// 6 movies for a0 (each with award) + 3 for a1 (no award) = 9 rows.
	if df.Len() != 9 {
		t.Fatalf("rows = %d, want 9", df.Len())
	}
	if awards != 6 {
		t.Fatalf("award rows = %d, want 6 (only a0 has an award)", awards)
	}
}

// listing3 builds the movie genre classification case study (Listing 3):
// (american actors OUTER JOIN prolific actors) INNER JOIN movie features.
func listing3(g *KnowledgeGraph, threshold int) *RDFFrame {
	movies := g.FeatureDomainRange("dbpp:starring", "movie", "actor").
		Expand("actor",
			Out("dbpp:birthPlace", "actor_country"),
			Out("rdfs:label", "actor_name")).
		Expand("movie",
			Out("rdfs:label", "movie_name"),
			Out("dcterms:subject", "subject"),
			Out("dbpp:country", "movie_country"),
			Out("dbpo:genre", "genre").Opt()).
		Cache()
	american := movies.FilterRaw("actor_country", `regex(str(?actor_country), "United_States")`)
	prolific := movies.GroupBy("actor").CountDistinct("movie", "movie_count").
		Filter(Conds{"movie_count": {fmt.Sprintf(">=%d", threshold)}})
	return american.Join(prolific, "actor", FullOuterJoin).
		Join(movies, "actor", InnerJoin)
}

func TestListing3GeneratesUnionOfOptionals(t *testing.T) {
	q, err := listing3(dbpediaGraph(), 20).ToSPARQL()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"UNION", "OPTIONAL", "GROUP BY ?actor", "HAVING ( COUNT(DISTINCT ?movie) >= 20 )"} {
		if !strings.Contains(q, want) {
			t.Errorf("missing %q in:\n%s", want, q)
		}
	}
	if _, err := sparql.Parse(q); err != nil {
		t.Fatalf("generated query does not parse: %v\n%s", err, q)
	}
}

func TestListing3ExecutesCorrectly(t *testing.T) {
	st := miniDBpedia(t)
	df, err := listing3(dbpediaGraph(), 5).Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() == 0 {
		t.Fatal("empty result")
	}
	// Every American actor's movies appear (a0,a1,a2 = 10 rows) plus
	// prolific non-American actors (a3, 5 movies).
	actors := map[string]int{}
	for i := 0; i < df.Len(); i++ {
		actors[df.Cell(i, "actor").Value]++
	}
	for _, want := range []string{"a0", "a1", "a2", "a3"} {
		if actors["http://dbpedia.org/resource/"+want] == 0 {
			t.Errorf("actor %s missing from result (have %v)", want, actors)
		}
	}
	for _, absent := range []string{"a4", "a5"} {
		if actors["http://dbpedia.org/resource/"+absent] != 0 {
			t.Errorf("actor %s should not be in result", absent)
		}
	}
}

const dblpURI = "http://dblp.l3s.de"

var dblpPrefixes = map[string]string{
	"swrc":   "http://swrc.ontoware.org/ontology#",
	"dc":     "http://purl.org/dc/elements/1.1/",
	"dcterm": "http://purl.org/dc/terms/",
	"dblprc": "http://dblp.l3s.de/d2r/resource/conferences/",
}

// miniDBLP builds a bibliography graph: authors au0..au4, papers with
// venues (vldb, sigmod, icml) and years. au0 has 4 vldb/sigmod papers
// since 2005, au1 has 2, others fewer or in other venues.
func miniDBLP(t testing.TB) *store.Store {
	t.Helper()
	st := store.New()
	p := rdf.CommonPrefixes()
	p.Merge(rdf.NewPrefixMap(dblpPrefixes))
	add := func(s, pred string, o rdf.Term) {
		tr := rdf.Triple{S: rdf.NewIRI(p.MustExpand(s)), P: rdf.NewIRI(p.MustExpand(pred)), O: o}
		if err := st.Add(dblpURI, tr); err != nil {
			t.Fatal(err)
		}
	}
	res := func(s string) rdf.Term { return rdf.NewIRI(p.MustExpand(s)) }
	type paper struct {
		author string
		conf   string
		year   int
	}
	papers := []paper{
		{"au0", "vldb", 2010}, {"au0", "sigmod", 2012}, {"au0", "vldb", 2015}, {"au0", "sigmod", 2018},
		{"au1", "vldb", 2011}, {"au1", "vldb", 2016},
		{"au2", "icml", 2014}, {"au2", "icml", 2017},
		{"au3", "vldb", 1999},
		{"au4", "sigmod", 2008},
	}
	for i, pp := range papers {
		id := fmt.Sprintf("<http://dblp.l3s.de/rec/%d>", i)
		add(id, "rdf:type", res("swrc:InProceedings"))
		add(id, "dc:creator", res("<http://dblp.l3s.de/author/"+pp.author+">"))
		add(id, "dcterm:issued", rdf.NewTypedLiteral(fmt.Sprintf("%d-01-01", pp.year), rdf.XSDDate))
		add(id, "swrc:series", res("dblprc:"+pp.conf))
		add(id, "dc:title", rdf.NewLiteral(fmt.Sprintf("Paper %d by %s", i, pp.author)))
	}
	return st
}

func dblpGraph() *KnowledgeGraph {
	g := NewKnowledgeGraph(dblpURI, dblpPrefixes)
	return g
}

// listing5 builds the topic modeling case study: titles of recent papers by
// authors with >= threshold SIGMOD/VLDB papers since 2005.
func listing5(g *KnowledgeGraph, threshold int) *RDFFrame {
	papers := g.Entities("swrc:InProceedings", "paper").
		Expand("paper",
			Out("dc:creator", "author"),
			Out("dcterm:issued", "date"),
			Out("swrc:series", "conference"),
			Out("dc:title", "title")).
		Cache()
	authors := papers.
		FilterRaw("date", "year(xsd:dateTime(?date)) >= 2005").
		Filter(Conds{"conference": {"In(dblprc:vldb, dblprc:sigmod)"}}).
		GroupBy("author").Count("paper", "n_papers").
		Filter(Conds{"n_papers": {fmt.Sprintf(">=%d", threshold)}}).
		FilterRaw("date", "year(xsd:dateTime(?date)) >= 2005")
	return papers.Join(authors, "author", InnerJoin).SelectCols("title")
}

func TestListing5GeneratesHavingQuery(t *testing.T) {
	q, err := listing5(dblpGraph(), 20).ToSPARQL()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"SELECT ?title",
		"GROUP BY ?author",
		"HAVING ( COUNT(?paper) >= 20 )",
		"IN (<http://dblp.l3s.de/d2r/resource/conferences/vldb>, <http://dblp.l3s.de/d2r/resource/conferences/sigmod>)",
	} {
		if !strings.Contains(q, want) {
			t.Errorf("missing %q in:\n%s", want, q)
		}
	}
	if _, err := sparql.Parse(q); err != nil {
		t.Fatalf("generated query does not parse: %v\n%s", err, q)
	}
}

func TestListing5ExecutesCorrectly(t *testing.T) {
	st := miniDBLP(t)
	df, err := listing5(dblpGraph(), 3).Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	// Only au0 has >= 3 vldb/sigmod papers since 2005: 4 titles.
	if df.Len() != 4 {
		t.Fatalf("titles = %d, want 4\n%s", df.Len(), df)
	}
	for i := 0; i < df.Len(); i++ {
		if !strings.Contains(df.Cell(i, "title").Value, "au0") {
			t.Fatalf("unexpected title %s", df.Cell(i, "title"))
		}
	}
}

// listing7 is the KG embedding data prep: all entity-to-entity triples.
func listing7(g *KnowledgeGraph) *RDFFrame {
	return g.FeatureDomainRange("pred", "sub", "obj").Filter(Conds{"obj": {"isURI"}})
}

func TestListing7GeneratesIsIRIFilter(t *testing.T) {
	q, err := listing7(dblpGraph()).ToSPARQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q, "FILTER ( isIRI(?obj) )") {
		t.Fatalf("missing isIRI filter:\n%s", q)
	}
	if _, err := sparql.Parse(q); err != nil {
		t.Fatalf("generated query does not parse: %v\n%s", err, q)
	}
}

func TestListing7ExecutesCorrectly(t *testing.T) {
	st := miniDBLP(t)
	df, err := listing7(dblpGraph()).Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < df.Len(); i++ {
		if !df.Cell(i, "obj").IsIRI() {
			t.Fatalf("non-IRI object in row %d: %v", i, df.Row(i))
		}
	}
	// 10 papers x 3 IRI-valued predicates (type, creator, series).
	if df.Len() != 30 {
		t.Fatalf("rows = %d, want 30", df.Len())
	}
}

// TestNaiveEquivalence checks that the naive per-operator translation
// returns the same bag of rows as the optimized translation (the paper
// verifies all alternatives produce identical results).
func TestNaiveEquivalence(t *testing.T) {
	dbp := miniDBpedia(t)
	dblp := miniDBLP(t)
	cases := []struct {
		name  string
		frame *RDFFrame
		store *store.Store
	}{
		{"listing1", listing1(dbpediaGraph(), 3), dbp},
		{"listing5", listing5(dblpGraph(), 3), dblp},
		{"listing7", listing7(dblpGraph()), dblp},
		{"expand_filter", dbpediaGraph().
			FeatureDomainRange("dbpp:starring", "movie", "actor").
			Expand("actor", Out("dbpp:birthPlace", "country")).
			Filter(Conds{"country": {"=dbpr:United_States"}}), dbp},
		{"group_only", dbpediaGraph().
			FeatureDomainRange("dbpp:starring", "movie", "actor").
			GroupBy("actor").Count("movie", "n"), dbp},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := ConnectStore(tc.store)
			opt, err := tc.frame.ToSPARQL()
			if err != nil {
				t.Fatal(err)
			}
			naive, err := tc.frame.ToNaiveSPARQL()
			if err != nil {
				t.Fatal(err)
			}
			optRes, err := c.Select(opt)
			if err != nil {
				t.Fatalf("optimized query failed: %v\n%s", err, opt)
			}
			naiveRes, err := c.Select(naive)
			if err != nil {
				t.Fatalf("naive query failed: %v\n%s", err, naive)
			}
			optDF := ResultsToDataFrame(optRes)
			naiveDF := ResultsToDataFrame(naiveRes)
			// Compare on the optimized query's columns (naive may expose
			// extra intermediate columns when projecting *).
			cols := optDF.Columns()
			nd, err := naiveDF.Select(cols...)
			if err != nil {
				t.Fatalf("naive result missing columns %v: has %v", cols, naiveDF.Columns())
			}
			if !dataframe.MultisetEqual(optDF, nd) {
				t.Fatalf("results differ:\noptimized (%d rows)\n%s\nnaive (%d rows)\n%s\nopt query:\n%s\nnaive query:\n%s",
					optDF.Len(), optDF, nd.Len(), nd, opt, naive)
			}
		})
	}
}

func TestExplorationOperators(t *testing.T) {
	st := miniDBLP(t)
	g := dblpGraph()
	df, err := g.Classes("class", "n").Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 1 || df.Cell(0, "class").Value != "http://swrc.ontoware.org/ontology#InProceedings" {
		t.Fatalf("classes = %s", df)
	}
	if n, _ := df.Cell(0, "n").AsInt(); n != 10 {
		t.Fatalf("class count = %d, want 10", n)
	}
	pd, err := g.PredicateDistribution("pred", "n").Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if pd.Len() != 5 {
		t.Fatalf("predicates = %d, want 5", pd.Len())
	}
	// Sorted descending by count; all have count 10.
	if n, _ := pd.Cell(0, "n").AsInt(); n != 10 {
		t.Fatalf("top predicate count = %d", n)
	}
}

func TestSortAndHead(t *testing.T) {
	st := miniDBpedia(t)
	df, err := dbpediaGraph().
		FeatureDomainRange("dbpp:starring", "movie", "actor").
		GroupBy("actor").CountDistinct("movie", "n").
		Sort(Desc("n")).
		Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := df.Cell(0, "n").AsInt(); n != 6 {
		t.Fatalf("top actor count = %d, want 6", n)
	}
	df2, err := dbpediaGraph().
		FeatureDomainRange("dbpp:starring", "movie", "actor").
		GroupBy("actor").CountDistinct("movie", "n").
		Sort(Desc("n")).Head(2).
		Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if df2.Len() != 2 {
		t.Fatalf("head = %d rows", df2.Len())
	}
}

func TestExpandAfterSortWraps(t *testing.T) {
	// A pattern-adding operator after modifiers must nest (paper §4.1).
	st := miniDBpedia(t)
	f := dbpediaGraph().
		FeatureDomainRange("dbpp:starring", "movie", "actor").
		Sort(Asc("actor")).Cache()
	df, err := f.Expand("actor", Out("dbpp:birthPlace", "country")).Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 18 { // every starring row has a birthplace
		t.Fatalf("rows = %d, want 18", df.Len())
	}
	q, _ := f.Expand("actor", Out("dbpp:birthPlace", "country")).ToSPARQL()
	if strings.Count(q, "SELECT") != 2 {
		t.Fatalf("expected nested query after modifiers:\n%s", q)
	}
}

func TestAggregateWholeFrame(t *testing.T) {
	st := miniDBpedia(t)
	df, err := dbpediaGraph().
		FeatureDomainRange("dbpp:starring", "movie", "actor").
		Aggregate(CountDistinct, "actor", "n_actors").
		Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := df.Cell(0, "n_actors").AsInt(); n != 6 {
		t.Fatalf("n_actors = %d, want 6", n)
	}
}

func TestAPIErrorsPropagate(t *testing.T) {
	g := dbpediaGraph()
	cases := []*RDFFrame{
		g.FeatureDomainRange("dbpp:starring", "movie", "actor").Expand("ghost", Out("dbpp:birthPlace", "c")),
		g.FeatureDomainRange("dbpp:starring", "movie", "actor").Expand("actor", Out("unknownprefix:x", "c")),
		g.FeatureDomainRange("dbpp:starring", "movie", "actor").Filter(Conds{"nope": {">=5"}}),
		g.FeatureDomainRange("dbpp:starring", "movie", "actor").Filter(Conds{"actor": {"~garbage~"}}),
		g.Seed("a b", "dbpp:x", "c"),
		g.FeatureDomainRange("dbpp:starring", "movie", "actor").SelectCols("ghost"),
		g.FeatureDomainRange("dbpp:starring", "movie", "actor").Expand("actor", Out("dbpp:birthPlace", "movie")),
	}
	for i, f := range cases {
		if _, err := f.ToSPARQL(); err == nil {
			t.Errorf("case %d: invalid frame compiled without error", i)
		}
	}
}

func TestJoinAcrossGraphsUsesGraphBlocks(t *testing.T) {
	dbp := dbpediaGraph()
	yago := NewKnowledgeGraph("http://yago-knowledge.org", map[string]string{
		"yago": "http://yago-knowledge.org/resource/",
	})
	left := dbp.FeatureDomainRange("dbpp:starring", "movie", "actor")
	right := yago.Seed("actor", "yago:actedIn", "yago_movie")
	q, err := left.Join(right, "actor", InnerJoin).ToSPARQL()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"FROM <http://dbpedia.org>",
		"FROM <http://yago-knowledge.org>",
		"GRAPH <http://dbpedia.org>",
		"GRAPH <http://yago-knowledge.org>",
	} {
		if !strings.Contains(q, want) {
			t.Errorf("missing %q in cross-graph query:\n%s", want, q)
		}
	}
	if _, err := sparql.Parse(q); err != nil {
		t.Fatalf("cross-graph query does not parse: %v\n%s", err, q)
	}
}

func TestJoinOnDifferentColumnNames(t *testing.T) {
	st := miniDBpedia(t)
	g := dbpediaGraph()
	left := g.FeatureDomainRange("dbpp:starring", "movie", "actor")
	right := g.Seed("star", "dbpp:academyAward", "award")
	df, err := left.JoinOn(right, "actor", "star", InnerJoin, "person").Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if !df.HasColumn("person") {
		t.Fatalf("joined column missing: %v", df.Columns())
	}
	// a0 (6 movies) and a3 (5 movies) have awards: 11 rows.
	if df.Len() != 11 {
		t.Fatalf("rows = %d, want 11", df.Len())
	}
}

func TestCondsRendering(t *testing.T) {
	g := dbpediaGraph()
	f := g.FeatureDomainRange("dbpp:starring", "movie", "actor").
		Expand("actor", Out("dbpp:birthPlace", "country"), Out("dbpo:year", "year")).
		Filter(Conds{
			"country": {"=dbpr:United_States", "!=dbpr:Canada"},
			"year":    {">=1990", "<2020"},
		})
	q, err := f.ToSPARQL()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"?country = <http://dbpedia.org/resource/United_States>",
		"?country != <http://dbpedia.org/resource/Canada>",
		"?year >= 1990",
		"?year < 2020",
	} {
		if !strings.Contains(q, want) {
			t.Errorf("missing %q in:\n%s", want, q)
		}
	}
}

func TestLazyEvaluationRecordsWithoutExecuting(t *testing.T) {
	// Building frames must not touch any client: no store exists here.
	g := dbpediaGraph()
	f := listing1(g, 50)
	if f.Err() != nil {
		t.Fatalf("recording failed: %v", f.Err())
	}
	// Only Execute/ToSPARQL compiles.
	if _, err := f.ToSPARQL(); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteOverHTTPWithPagination(t *testing.T) {
	st := miniDBpedia(t)
	endpoint := newHTTPEndpoint(t, st, 4) // server truncates at 4 rows
	c := ConnectHTTP(endpoint, 4)
	df, err := dbpediaGraph().FeatureDomainRange("dbpp:starring", "movie", "actor").Execute(c)
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 18 {
		t.Fatalf("rows = %d, want 18 (pagination must fetch all)", df.Len())
	}
}
