package rdfframes

import (
	"strings"
	"testing"

	"rdfframes/internal/rdf"
	"rdfframes/internal/store"
)

// TestOptionalExpandAfterFullOuterJoin locks in a translator invariant
// found by randomized differential testing: an optional expand recorded
// after a join must render its OPTIONAL block after the join's patterns,
// or the left join applies to the empty solution and behaves like an
// inner join.
func TestOptionalExpandAfterFullOuterJoin(t *testing.T) {
	st := miniDBpedia(t)
	g := dbpediaGraph()
	left := g.FeatureDomainRange("dbpp:starring", "movie", "actor")
	grouped := g.FeatureDomainRange("dbpp:starring", "movie", "actor").
		GroupBy("movie").CountDistinct("actor", "cast_size")
	frame := left.Join(grouped, "movie", FullOuterJoin).
		Expand("actor", Out("dbpp:academyAward", "award").Opt())

	q, err := frame.ToSPARQL()
	if err != nil {
		t.Fatal(err)
	}
	optIdx := strings.Index(q, "OPTIONAL {\n    ?actor")
	unionIdx := strings.Index(q, "UNION")
	if optIdx < 0 || unionIdx < 0 {
		t.Fatalf("expected OPTIONAL award block and UNION in:\n%s", q)
	}
	if optIdx < unionIdx {
		t.Fatalf("optional expand rendered before the union it extends:\n%s", q)
	}

	df, err := frame.Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	// Rows without awards must survive (left-join semantics).
	withNull := 0
	for i := 0; i < df.Len(); i++ {
		if !df.Cell(i, "award").IsBound() {
			withNull++
		}
	}
	if withNull == 0 {
		t.Fatal("optional expand behaved like an inner join")
	}
}

func TestSearchLabels(t *testing.T) {
	st := miniDBpedia(t)
	df, err := dbpediaGraph().SearchLabels("actor 1", "entity", "label").
		Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 1 || df.Cell(0, "label").Value != "Actor 1" {
		t.Fatalf("search = %s", df)
	}
}

func TestCondsInWithQuotedStrings(t *testing.T) {
	g := dbpediaGraph()
	q, err := g.FeatureDomainRange("dbpp:starring", "movie", "actor").
		Expand("movie", Out("rdfs:label", "name")).
		Filter(Conds{"name": {`In("A, B", "C")`}}).
		ToSPARQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q, `?name IN ("A, B", "C")`) {
		t.Fatalf("quoted IN mishandled:\n%s", q)
	}
}

func TestCondsBareWordBecomesLiteral(t *testing.T) {
	g := dbpediaGraph()
	q, err := g.FeatureDomainRange("dbpp:starring", "movie", "actor").
		Expand("movie", Out("rdfs:label", "name")).
		Filter(Conds{"name": {"=Inception"}}).
		ToSPARQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q, `?name = "Inception"`) {
		t.Fatalf("bare word not rendered as literal:\n%s", q)
	}
}

func TestSeedWithLiteralObject(t *testing.T) {
	st := miniDBpedia(t)
	df, err := dbpediaGraph().Seed("m", "rdfs:label", `"Movie 0"`).
		Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 1 {
		t.Fatalf("rows = %d, want 1", df.Len())
	}
}

func TestSliceWithOffset(t *testing.T) {
	st := miniDBpedia(t)
	all, err := dbpediaGraph().FeatureDomainRange("dbpp:starring", "movie", "actor").
		Sort(Asc("movie"), Asc("actor")).
		Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	sliced, err := dbpediaGraph().FeatureDomainRange("dbpp:starring", "movie", "actor").
		Sort(Asc("movie"), Asc("actor")).
		Slice(5, 3).
		Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Len() != 5 {
		t.Fatalf("slice = %d rows", sliced.Len())
	}
	if sliced.Cell(0, "movie") != all.Cell(3, "movie") {
		t.Fatalf("offset not applied: %v vs %v", sliced.Cell(0, "movie"), all.Cell(3, "movie"))
	}
}

func TestFrameErrShortCircuitsEverything(t *testing.T) {
	g := dbpediaGraph()
	bad := g.Seed("a b c", "dbpp:x", "y") // invalid column
	// Every subsequent call must keep (not panic on) the error.
	f := bad.Expand("x", Out("dbpp:y", "z")).
		Filter(Conds{"z": {">=1"}}).
		GroupBy("z").Count("x", "n").
		Sort(Asc("n")).
		Head(5)
	if f.Err() == nil {
		t.Fatal("error lost along the chain")
	}
	if _, err := f.Execute(nil); err == nil {
		t.Fatal("Execute must surface the recorded error")
	}
	if _, err := f.ToNaiveSPARQL(); err == nil {
		t.Fatal("ToNaiveSPARQL must surface the recorded error")
	}
	if _, err := f.QueryModel(); err == nil {
		t.Fatal("QueryModel must surface the recorded error")
	}
}

func TestJoinWithFailedRightSide(t *testing.T) {
	g := dbpediaGraph()
	good := g.FeatureDomainRange("dbpp:starring", "movie", "actor")
	bad := g.Seed("a b", "dbpp:x", "y")
	if _, err := good.Join(bad, "actor", InnerJoin).ToSPARQL(); err == nil {
		t.Fatal("join with failed frame must propagate its error")
	}
}

func TestGroupedFrameOnFailedFrame(t *testing.T) {
	g := dbpediaGraph()
	bad := g.Seed("a b", "dbpp:x", "y")
	f := bad.GroupBy("y").Count("a", "n")
	if f.Err() == nil {
		t.Fatal("grouping on failed frame must keep the error")
	}
}

func TestMultipleAggregationsOnOneGroup(t *testing.T) {
	st := store.New()
	p := rdf.NewIRI("http://dbpedia.org/property/rating")
	for i, v := range []int64{3, 5, 4, 2} {
		sub := rdf.NewIRI("http://dbpedia.org/resource/m" + string(rune('0'+i%2)))
		if err := st.Add(dbpediaURI, rdf.Triple{S: sub, P: p, O: rdf.NewInteger(v)}); err != nil {
			t.Fatal(err)
		}
	}
	g := dbpediaGraph()
	grouped := g.Seed("movie", "dbpp:rating", "rating").GroupBy("movie")
	// Two aggregations over the same grouping, chained via the frame from
	// the first aggregation's grouped structure.
	df, err := grouped.Count("rating", "n").Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 2 {
		t.Fatalf("groups = %d", df.Len())
	}
	sum, err := grouped.Sum("rating", "total").Execute(ConnectStore(st))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for i := 0; i < sum.Len(); i++ {
		v, _ := sum.Cell(i, "total").AsInt()
		total += v
	}
	if total != 14 {
		t.Fatalf("sum of sums = %d, want 14", total)
	}
}
