package rdfframes

import (
	"net/http/httptest"
	"testing"

	"rdfframes/internal/server"
	"rdfframes/internal/sparql"
	"rdfframes/internal/store"
)

// newHTTPEndpoint starts a SPARQL endpoint over st for the duration of the
// test and returns its query URL. maxRows caps rows per response.
func newHTTPEndpoint(t testing.TB, st *store.Store, maxRows int) string {
	t.Helper()
	srv := server.New(sparql.NewEngine(st))
	srv.MaxRows = maxRows
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL + "/sparql"
}
