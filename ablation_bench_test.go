// Ablation benchmarks for the design choices DESIGN.md calls out: the
// engine's greedy join ordering, its filter pushdown, and the client's
// pagination page size. These isolate why the optimized queries win in
// Figures 3–5.
package rdfframes_test

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"rdfframes"
	"rdfframes/internal/server"
	"rdfframes/internal/sparql"
)

// ablationQuery is a join-heavy query whose cost is dominated by pattern
// order: starting from the selective birthPlace filter is far cheaper than
// starting from the starring fan-out.
const ablationQuery = `
PREFIX dbpp: <http://dbpedia.org/property/>
PREFIX dbpr: <http://dbpedia.org/resource/>
SELECT * FROM <http://dbpedia.org> WHERE {
  ?movie dbpp:starring ?actor .
  ?movie dbpp:language ?language .
  ?movie dbpp:studio ?studio .
  ?actor dbpp:birthPlace dbpr:Japan .
  FILTER ( ?studio != dbpr:Warner )
}`

func BenchmarkAblationJoinOrdering(b *testing.B) {
	env := sharedBenchEnv(b)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"greedy", false}, {"textual_order", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng := sparql.NewEngine(env.Store)
			eng.DisableReorder = mode.disable
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(ablationQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationFilterPushdown(b *testing.B) {
	env := sharedBenchEnv(b)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"pushdown", false}, {"filter_at_end", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng := sparql.NewEngine(env.Store)
			eng.DisablePushdown = mode.disable
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(ablationQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPageSize sweeps the client's pagination chunk size
// against a row-capped endpoint, quantifying the chunking overhead the
// paper's Executor design accepts for endpoint generality.
func BenchmarkAblationPageSize(b *testing.B) {
	env := sharedBenchEnv(b)
	srv := server.New(sparql.NewEngine(env.Store))
	srv.MaxRows = 100000
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	frame := env.DBpedia.FeatureDomainRange("dbpp:starring", "movie", "actor")
	for _, pageSize := range []int{500, 2000, 10000} {
		b.Run(fmt.Sprintf("page%d", pageSize), func(b *testing.B) {
			c := rdfframes.ConnectHTTP(ts.URL+"/sparql", pageSize)
			for i := 0; i < b.N; i++ {
				if _, err := frame.Execute(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
